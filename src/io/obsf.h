// OBSF — append-only blocked columnar binary container (DESIGN.md §14).
//
// File layout:
//
//   [ header ]                         u32 magic "OBSF", u32 version,
//                                      u32 flags, u32 ncols,
//                                      u32 meta_len + meta bytes,
//                                      ncols x { u8 type, u8 codec,
//                                                u16 name_len, name },
//                                      u32 crc32(all preceding bytes)
//   [ block ]*                         u32 magic "OBLK", u32 rows,
//                                      u32 raw_len, u32 stored_len,
//                                      u8 block_codec (0 raw / 1 lz4),
//                                      stored_len payload bytes,
//                                      u32 crc32(rows..payload)
//   [ sentinel ]                       a block frame with rows == 0 —
//                                      marks clean end-of-stream so a
//                                      truncation landing exactly on a
//                                      block boundary is still detected
//
// Each block is independently decodable, and within a block each *column*
// is independently decodable. block_codec 0 stores the plain columnar
// payload: the concatenation, in schema order, of one encoded byte-run per
// column (varint length + bytes). block_codec 1 stores per-column frames:
// { varint raw_len, varint stored_len, u8 run_codec (0 raw / 1 lz4),
// stored bytes } per column — each column's run is LZ4-compressed only
// when that actually shrinks it. Per-column compression is what makes
// projected scans cheap: the reader decodes a column the first time an
// accessor touches it, so a scan over the narrow numeric columns never
// decompresses the wide text columns riding in the same block.
// Blocks are CRC-32-footed (util/crc32), verified eagerly in next_block()
// over the stored payload. Durability comes from util::AtomicFileWriter: the
// whole file appears atomically on commit (tmp + fsync + rename), and the
// per-block CRCs + sentinel make *reads* of a later-corrupted file fail
// typed (strict mode) or recover to the last intact block (recover mode).
//
// Writes go through BlockWriter, an async double buffer: submit() hands a
// filled block to a ThreadPool lane which compresses and writes it while
// the caller encodes block N+1. At most one block is in flight, so the
// underlying AtomicFileWriter never sees concurrent writes and file order
// equals submit order — byte-identical output regardless of lane count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/atomic_file.h"

namespace odlp::io {

constexpr std::uint32_t kObsfMagic = 0x4653424Fu;   // "OBSF"
constexpr std::uint32_t kBlockMagic = 0x4B4C424Fu;  // "OBLK"
constexpr std::uint32_t kObsfVersion = 1;

// Physical value type of a column.
enum class ColumnType : std::uint8_t {
  kBytes = 0,  // length-prefixed byte strings
  kI64 = 1,
  kU64 = 2,
  kF64 = 3,
  kU8 = 4,
  kF32 = 5,
};

// Row codec applied within a block.
enum class ColumnCodec : std::uint8_t {
  kFlat = 0,   // values verbatim (varint for integers, raw LE for floats)
  kDelta = 1,  // first value raw, then zigzag-varint deltas (i64/u64 only)
  kZoH = 2,    // zero-order hold: (varint run_length, value) pairs
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kBytes;
  ColumnCodec codec = ColumnCodec::kFlat;
};

struct Schema {
  std::vector<ColumnSpec> columns;
  // Free-form consumer metadata stored in the header (e.g. buffer capacity
  // and row count for the v3 checkpoint path). Covered by the header CRC.
  std::string meta;
};

// Validates type/codec combinations (delta needs integers, ZoH needs
// fixed-width values, bytes columns are flat-only); throws
// std::invalid_argument on an illegal spec.
void validate_schema(const Schema& schema);

// Async double-buffered block sink over an AtomicFileWriter. Not
// thread-safe for concurrent submit(); designed for one producer.
class BlockWriter {
 public:
  // `compress` enables LZ4 (per block, raw fallback when it doesn't help);
  // `async` offloads compression+write to the global ThreadPool when it has
  // spare lanes (a 1-lane pool always runs inline).
  BlockWriter(util::AtomicFileWriter& out, bool compress, bool async);
  ~BlockWriter();

  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;

  // Queues one block (ownership of `payload` transfers). Blocks until the
  // previously submitted block has been written, so at most one block is in
  // flight; rethrows any error the in-flight write produced.
  void submit(std::uint32_t rows, std::vector<std::uint8_t> payload);

  // Waits for the in-flight block and rethrows its error if any. Must be
  // called before footer/commit on the underlying writer.
  void drain();

  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t raw_bytes() const { return raw_bytes_; }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  struct Sync;

  void write_block(std::uint32_t rows, const std::vector<std::uint8_t>& raw);

  util::AtomicFileWriter& out_;
  bool compress_;
  bool async_;
  std::unique_ptr<Sync> sync_;
  std::uint64_t blocks_ = 0;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

// Columnar writer: append one value per schema column, end_row(), repeat;
// finish() flushes the tail block, writes the sentinel, and commits.
class ObsfWriter {
 public:
  struct Options {
    std::size_t block_rows = 4096;  // rows per block before a flush
    bool compress = true;
    bool async = true;
  };

  struct Stats {
    std::uint64_t rows = 0;
    std::uint64_t blocks = 0;         // data blocks (sentinel excluded)
    std::uint64_t raw_bytes = 0;      // encoded payload before compression
    std::uint64_t stored_bytes = 0;   // payload bytes on disk
    std::uint64_t file_bytes = 0;     // total file size incl. framing
  };

  ObsfWriter(std::string path, Schema schema, Options options);
  ObsfWriter(std::string path, Schema schema)
      : ObsfWriter(std::move(path), std::move(schema), Options()) {}
  // An unfinished writer aborts: the destination file is never touched.
  ~ObsfWriter();

  ObsfWriter(const ObsfWriter&) = delete;
  ObsfWriter& operator=(const ObsfWriter&) = delete;

  // Appends the next column of the current row; columns must be appended in
  // schema order and match the declared type (checked, throws
  // std::logic_error on misuse).
  void append_bytes(std::string_view v);
  void append_i64(std::int64_t v);
  void append_u64(std::uint64_t v);
  void append_f64(double v);
  void append_u8(std::uint8_t v);
  void append_f32(float v);

  // Completes the current row; flushes a block every `block_rows` rows.
  void end_row();

  // Flushes, writes the sentinel block, commits the file atomically, and
  // returns aggregate stats. The writer is inert afterwards.
  Stats finish();

  // Per-column accumulation buffer (public so the file-local codec helpers
  // in obsf.cpp can take it by reference; not part of the API surface).
  struct ColumnBuffer;

 private:
  void flush_block();

  std::string path_;
  Schema schema_;
  Options options_;
  std::unique_ptr<util::AtomicFileWriter> out_;
  std::unique_ptr<BlockWriter> block_writer_;
  std::vector<ColumnBuffer> columns_;
  std::size_t next_col_ = 0;
  std::size_t rows_in_block_ = 0;
  std::uint64_t total_rows_ = 0;
  bool finished_ = false;
};

// Block-at-a-time reader. Strict mode (default) throws
// util::CorruptionError on any anomaly — bad header, bad block CRC,
// truncation anywhere including exactly at a block boundary (missing
// sentinel), or trailing bytes after the sentinel. Recover mode stops at
// the first damaged block instead, keeping every intact block before it,
// and reports the damage via truncated().
class ObsfReader {
 public:
  struct Options {
    bool recover = false;
  };

  explicit ObsfReader(const std::string& path, Options options);
  explicit ObsfReader(const std::string& path)
      : ObsfReader(path, Options()) {}
  ~ObsfReader();

  ObsfReader(const ObsfReader&) = delete;
  ObsfReader& operator=(const ObsfReader&) = delete;

  const Schema& schema() const { return schema_; }

  // Advances to the next data block: verifies the frame and its CRC and
  // locates each column's run, but decodes nothing yet. Returns false at
  // end of stream (clean sentinel, or first damage in recover mode).
  bool next_block();

  // Rows in the current block (valid after next_block() returned true).
  std::size_t rows() const { return rows_; }

  // Column accessors for the current block; the accessor must match the
  // schema column type (throws std::logic_error otherwise).
  //
  // Columns decode lazily: the first accessor call for a column
  // decompresses and decodes that column's run, so a projected scan pays
  // only for the columns it touches. Bytes columns decode zero-copy:
  // col_bytes_views() returns views into the column's decompressed run
  // (valid until the next next_block() call) with no per-value allocation —
  // the scan fast path. col_bytes() lazily materializes owning strings from
  // those views on first call per block; col_bytes_mut() additionally lets
  // a consumer move the strings out instead of copying (a block is decoded
  // once and never revisited).
  const std::vector<std::string_view>& col_bytes_views(std::size_t c) const;
  const std::vector<std::string>& col_bytes(std::size_t c) const;
  std::vector<std::string>& col_bytes_mut(std::size_t c);
  const std::vector<std::int64_t>& col_i64(std::size_t c) const;
  const std::vector<std::uint64_t>& col_u64(std::size_t c) const;
  const std::vector<double>& col_f64(std::size_t c) const;
  const std::vector<std::uint8_t>& col_u8(std::size_t c) const;
  const std::vector<float>& col_f32(std::size_t c) const;

  std::size_t blocks_read() const { return blocks_read_; }
  // Recover mode only: true when the stream ended at damage rather than at
  // the clean sentinel.
  bool truncated() const { return truncated_; }

  // Decoded per-column storage (public for the obsf.cpp codec helpers).
  struct ColumnData;

 private:
  // Decompresses (if needed) and decodes column c on first touch; const
  // because every accessor is, with the decoded state held in the mutable
  // columns_ below.
  void ensure_decoded(std::size_t c) const;

  Schema schema_;
  std::vector<unsigned char> bytes_;
  std::size_t offset_ = 0;
  Options options_;
  // Lazily decoded per-column state for the current block (run extents into
  // bytes_, decompression scratch, decoded vectors). Mutable so the const
  // accessors can decode on demand.
  mutable std::vector<ColumnData> columns_;
  std::size_t rows_ = 0;
  std::size_t blocks_read_ = 0;
  bool truncated_ = false;
  bool done_ = false;
};

}  // namespace odlp::io
