// Record/replay of dialogue traffic via OBSF (DESIGN.md §14).
//
// RecordingStream captures any data::DialogueStream run — stream and
// held-out test splits — into one OBSF file with delta/ZoH column codecs
// (positions are near-sequential, domains/noise flags arrive in bursts, so
// both compress to almost nothing). ReplayStream feeds the file back
// bit-identically: every string, ground-truth label, and stream position is
// restored exactly, so a replayed bench or chaos run takes the same code
// path, byte for byte, as the generated run — without paying generation
// cost again. bench_fleet and run_chaos_fleet use this to record traffic
// once and replay it many times.
//
// Schema (meta "odlp.traffic.v1"):
//   position  u64  delta   stream_position
//   split     u8   zoh     0 = stream portion, 1 = test portion
//   question  bytes flat
//   answer    bytes flat
//   reference bytes flat
//   domain    i64  zoh     generator ground truth (-1 = none)
//   subtopic  i64  zoh
//   noise     u8   zoh
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "data/dialogue.h"
#include "data/generator.h"
#include "io/obsf.h"

namespace odlp::io {

// Incremental traffic recorder. Append dialogue sets (test=false for the
// stream portion, true for the held-out split), then finish() to commit.
class RecordingStream {
 public:
  explicit RecordingStream(const std::string& path);
  ~RecordingStream();

  void append(const data::DialogueSet& set, bool test);

  // Flushes and atomically commits the recording; returns container stats.
  ObsfWriter::Stats finish();

 private:
  std::unique_ptr<ObsfWriter> writer_;
};

// Sequential reader over a recorded traffic file. next() restores one
// dialogue set per call in recorded order.
class ReplayStream {
 public:
  explicit ReplayStream(const std::string& path);
  ~ReplayStream();

  // Fills `set` (and `test` with the split flag) from the next record;
  // returns false at end of stream.
  bool next(data::DialogueSet& set, bool& test);

 private:
  ObsfReader reader_;
  std::size_t row_ = 0;
  bool have_block_ = false;
};

// Records a full generated dataset (stream then test split, in order).
ObsfWriter::Stats record_dataset(const data::GeneratedDataset& dataset,
                                 const std::string& path);

// Replays a file written by record_dataset back into the two splits.
data::GeneratedDataset replay_dataset(const std::string& path);

}  // namespace odlp::io
