// INT8 GEMM kernels over per-block quantized weights (the second compute
// backend; fp32 kernels live in ops.h).
//
// out[m,n] (+)= X[m,k] · Q(W)[k,n]: the fp32 activations X are quantized
// dynamically — one symmetric int8 scale per row, codes pre-widened to
// int16 — and multiplied against a kAlongRows-quantized weight by an
// int8×int8→int32 micro-kernel. Each 32-deep k-block accumulates exactly in
// int32 (32·127·127 < 2^19, far from overflow), then a fp32 fixup folds the
// activation-row and weight-block scales into the output:
//
//   out[i][j] += sx[i] * sw[kb][j] * (float)acc
//
// with k-blocks visited in strictly ascending order. Because the integer
// partial sums are exact (any summation order gives the same int32) and the
// fixup expression + order is fixed, qmatmul is not merely deterministic
// like the fp32 tiled kernels: it is bit-identical to qmatmul_reference and
// invariant to the thread-pool lane count (DESIGN.md §8–§9).
//
// This TU is compiled -O3 -ffp-contract=off like ops.cpp (the fixup is fp32
// arithmetic and must not contract into FMA).
#pragma once

#include "tensor/qtensor.h"
#include "tensor/tensor.h"

namespace odlp::tensor {

// out[m,n] (+)= X[m,k] · Q(W)[k,n]. W must be quantized kAlongRows with
// W.rows() == X.cols(). Register-tiled 4×16 path for m ≥ 4, a W-streaming
// matvec path for m < 4 (the m=1 decode step); row-parallel above a flops
// threshold. When accumulate is false `out` is reshaped and fully written.
// `out` must not alias `x`.
void qmatmul_into(const Tensor& x, const QuantizedTensor& w, Tensor& out,
                  bool accumulate = false);

// Allocating wrapper over qmatmul_into.
Tensor qmatmul(const Tensor& x, const QuantizedTensor& w);

// Serial unblocked kernel with the identical block order and fixup
// expression; bit-identical to qmatmul for every shape and lane count
// (tests/test_quantized_equivalence.cpp).
Tensor qmatmul_reference(const Tensor& x, const QuantizedTensor& w);

}  // namespace odlp::tensor
