// AVX-VNNI build of the tiled int8 GEMM row kernel. Compiled -mavxvnni -O3
// -ffp-contract=off in its own TU (src/CMakeLists.txt, gated on the
// toolchain supporting the flag via ODLP_HAVE_AVXVNNI); the dispatcher in
// qops.cpp only calls in here once active_simd_level() confirms kVnni.
//
// vpdpbusd multiplies unsigned×signed byte quads and accumulates the exact
// widened sum into int32 lanes — the whole sign/maddubs/madd/add chain of
// the AVX2 kernel in one instruction, and with no int16 saturation hazard
// (the four products are widened before summing). vpdpbusd wants an
// unsigned×signed operand pair, but both our operands are signed, so the
// kernel biases the WEIGHTS: wu = w ⊕ 0x80 = w + 128 ∈ [1, 255] (codes
// clamp to ±127, so the bias never wraps) — one vpxor per shuffled tile
// half — and accumulates
//
//   Σ wu·x  =  Σ w·x + 128·Σ x
//
// per (block, column). The correction term needs only Σ x over the block's
// vectorized k positions, a per-(row, block) scalar that falls out of the
// activation packing loop for free; it is broadcast-subtracted once per
// block before the fixup. Biasing the weights rather than the activations
// keeps Σw recomputation out of the inner loop entirely and leaves exactly
// 16 live ymm values (8 accumulators + the 8-register shuffle network), so
// nothing spills. Every step is integer and order-free, so the block sums
// are bit-identical to the scalar/SSE2/AVX2/reference kernels and the
// shared fp32 fixup keeps the whole product bit-exact across dispatch
// levels.
//
// There is deliberately no VNNI small-rows path: at m < 4 the GEMV step is
// bound by streaming the weight matrix, not by the multiply chain, so kVnni
// keeps dispatching small shapes to the AVX2 kernel (simd_kernels.h).
#include "tensor/simd_kernels.h"

#if defined(ODLP_SIMD_KERNELS_X86) && defined(ODLP_INT8) && \
    defined(ODLP_HAVE_AVXVNNI)

#include <immintrin.h>

#include <algorithm>

#include "tensor/qtensor.h"  // kQuantBlock

namespace odlp::tensor::detail {

namespace {

// Same register tile as qops.cpp: 4 C rows × 16 int32 accumulators.
constexpr std::size_t kQMR = 4;
constexpr std::size_t kQNR = 16;

// Identical weight-tile shuffle as qops_avx2.cpp: 4(k) × 16(col) int8 tile
// into per-column k-quads, one 32-bit lane per column.
inline void load_kquad_tile(const std::int8_t* w, std::size_t stride,
                            __m256i& q07, __m256i& q8f) {
  const __m128i r0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i r1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + stride));
  const __m128i r2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 2 * stride));
  const __m128i r3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 3 * stride));
  const __m128i lo01 = _mm_unpacklo_epi8(r0, r1);
  const __m128i hi01 = _mm_unpackhi_epi8(r0, r1);
  const __m128i lo23 = _mm_unpacklo_epi8(r2, r3);
  const __m128i hi23 = _mm_unpackhi_epi8(r2, r3);
  q07 = _mm256_set_m128i(_mm_unpackhi_epi16(lo01, lo23),
                         _mm_unpacklo_epi16(lo01, lo23));
  q8f = _mm256_set_m128i(_mm_unpackhi_epi16(hi01, hi23),
                         _mm_unpacklo_epi16(hi01, hi23));
}

// Broadcasts one activation k-quad (raw signed bytes — the signed vpdpbusd
// operand) into every 32-bit lane. Codes are int16 in storage but always
// fit ±127.
inline __m256i broadcast_kquad(const std::int16_t* x) {
  const auto u8 = [](std::int32_t v) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(v));
  };
  return _mm256_set1_epi32(static_cast<std::int32_t>(
      u8(x[0]) | (u8(x[1]) << 8) | (u8(x[2]) << 16) | (u8(x[3]) << 24)));
}

}  // namespace

void qgemm_tiled_rows_vnni(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  for (std::size_t i = i0; i < i1; i += kQMR) {
    const std::size_t mr = std::min(kQMR, i1 - i);
    if (!accumulate) {
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * ldc;
        std::fill(crow, crow + N, 0.0f);
      }
    }
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const std::size_t quad_end = p0 + ((p1 - p0) & ~std::size_t{3});
      const std::size_t nquads = (quad_end - p0) / 4;
      const float* __restrict__ swb = sw + kb * N;
      // Activation k-quads depend only on (row, k): pack all four rows'
      // quads once per block and reuse them across every column tile. The
      // packing pass also yields Σx over the vectorized k positions — the
      // weight-bias correction term, one int32 per row per block.
      __m256i xq[kQMR][kQuantBlock / 4];
      std::int32_t xsum[kQMR] = {};
      if (mr == kQMR) {
        for (std::size_t r = 0; r < kQMR; ++r) {
          const std::int16_t* xrow = qx + (i + r) * K;
          for (std::size_t q = 0; q < nquads; ++q) {
            const std::int16_t* xp = xrow + p0 + 4 * q;
            xq[r][q] = broadcast_kquad(xp);
            xsum[r] += xp[0] + xp[1] + xp[2] + xp[3];
          }
        }
      }
      for (std::size_t j0 = 0; j0 < N; j0 += kQNR) {
        const std::size_t nr = std::min(kQNR, N - j0);
        std::int32_t acc[kQMR * kQNR] = {};
        if (mr == kQMR && nr == kQNR) {
          // One biased shuffled weight tile shared across the four C rows:
          // per k-quad the inner loop is two vpxor and eight vpdpbusd. The
          // accumulators are named locals (not an array) so they stay
          // pinned in ymm registers — with an indexed array GCC
          // round-trips every accumulator through the stack each k-quad,
          // which costs more than the dpbusd itself.
          __m256i a0l = _mm256_setzero_si256(), a0h = a0l, a1l = a0l,
                  a1h = a0l, a2l = a0l, a2h = a0l, a3l = a0l, a3h = a0l;
          for (std::size_t q = 0; q < nquads; ++q) {
            __m256i q07, q8f;
            load_kquad_tile(qw + (p0 + 4 * q) * N + j0, N, q07, q8f);
            q07 = _mm256_xor_si256(q07, bias);  // w + 128, now unsigned
            q8f = _mm256_xor_si256(q8f, bias);
            a0l = _mm256_dpbusd_avx_epi32(a0l, q07, xq[0][q]);
            a0h = _mm256_dpbusd_avx_epi32(a0h, q8f, xq[0][q]);
            a1l = _mm256_dpbusd_avx_epi32(a1l, q07, xq[1][q]);
            a1h = _mm256_dpbusd_avx_epi32(a1h, q8f, xq[1][q]);
            a2l = _mm256_dpbusd_avx_epi32(a2l, q07, xq[2][q]);
            a2h = _mm256_dpbusd_avx_epi32(a2h, q8f, xq[2][q]);
            a3l = _mm256_dpbusd_avx_epi32(a3l, q07, xq[3][q]);
            a3h = _mm256_dpbusd_avx_epi32(a3h, q8f, xq[3][q]);
          }
          // Undo the +128 weight bias: acc = Σ(w+128)·x − 128·Σx.
          const __m256i rl[kQMR] = {a0l, a1l, a2l, a3l};
          const __m256i rh[kQMR] = {a0h, a1h, a2h, a3h};
          for (std::size_t r = 0; r < kQMR; ++r) {
            const __m256i corr = _mm256_set1_epi32(128 * xsum[r]);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(acc + r * kQNR),
                _mm256_sub_epi32(rl[r], corr));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(acc + r * kQNR + 8),
                _mm256_sub_epi32(rh[r], corr));
          }
          // Block-length % 4 tail: integer adds are exact in any order, so
          // the unbiased scalar stragglers keep the block sum bit-identical.
          for (std::size_t p = quad_end; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < kQMR; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < kQNR; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        } else {
          for (std::size_t p = p0; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < mr; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < nr; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        }
        for (std::size_t r = 0; r < mr; ++r) {
          float* __restrict__ crow = c + (i + r) * ldc + j0;
          const float sxr = sx[i + r];
          const float* __restrict__ swt = swb + j0;
          const std::int32_t* arow = acc + r * kQNR;
          for (std::size_t j = 0; j < nr; ++j) {
            crow[j] += sxr * swt[j] * static_cast<float>(arow[j]);
          }
        }
      }
    }
  }
}

}  // namespace odlp::tensor::detail

#endif  // ODLP_SIMD_KERNELS_X86 && ODLP_INT8 && ODLP_HAVE_AVXVNNI
