// Forward and backward kernels over rank-2 tensors.
//
// Every forward kernel has a matching backward kernel taking the upstream
// gradient and producing gradients w.r.t. its inputs, so modules can compose
// them into exact backprop without an autograd graph. All kernels are
// verified against finite differences in tests/test_gradcheck.cpp.
//
// Kernel families:
//  * `*_into` variants write into a caller-provided tensor (typically a
//    tensor::Workspace slot) so hot paths run allocation-free; the
//    allocating spellings are thin wrappers over them.
//  * The GEMM products (matmul / matmul_nt / matmul_tn) share one
//    register-tiled micro-kernel over packed panels (this file's hot core,
//    compiled with -O3 -ffp-contract=off; see src/CMakeLists.txt).
//  * `*_reference` kernels are the plain serial implementations, retained as
//    the numerical baseline. The tiled kernels are *deterministic* — the
//    per-element accumulation order is a fixed function of the shape, so
//    results are identical run-to-run and for any thread-pool lane count —
//    but NOT bit-identical to the references (different accumulator widths
//    and FP order); equivalence tests use a tight relative-tolerance band
//    (DESIGN.md §8, tests/test_kernel_shapes.cpp).
#pragma once

#include "tensor/tensor.h"

namespace odlp::tensor {

// How the GEMM hot cores are built AND dispatched, recorded by bench_perf
// into results/BENCH_perf.json so perf trajectories name the kernel they
// measured. The variant strings reflect the *runtime* SIMD dispatch level
// (tensor/simd.h) at the moment of the call, not just compile-time flags —
// forcing a level via ODLP_SIMD or set_simd_level() changes what this
// reports (tests/test_simd_dispatch.cpp pins the mapping).
struct KernelBuildInfo {
  const char* variant;       // fp32 core: "tiled-4x8-packed[-avx2]"
  const char* simd_level;    // active dispatch level:
                             // "scalar"|"sse2"|"avx2"|"vnni"
  bool native_arch;          // true when built with ODLP_NATIVE_ARCH (-march=native)
  const char* int8_variant;  // int8 backend (qops.cpp): "q8-4x16-scalar",
                             // "q8-4x16-madd-sse2", "q8-4x16-maddubs-avx2",
                             // "q8-4x16-dpbusd-vnni", or "disabled" when
                             // built -DODLP_INT8=OFF
  std::size_t int8_block;    // quant block along k (tensor::kQuantBlock),
                             // 0 when disabled
};
KernelBuildInfo kernel_build_info();

// out[m,n] (+)= A[m,k] * B[k,n]. Register-tiled 4xN micro-kernel over packed
// B panels; row-parallel on the util::ThreadPool above a flops threshold.
// When accumulate is false, `out` is reshaped (uninitialized) and every
// element is written exactly once. `out` must not alias `a` or `b`.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate = false);

// out[m,n] (+)= A[m,k] * B[n,k]^T  (shared micro-kernel, B packed transposed).
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out,
                    bool accumulate = false);

// out[m,n] (+)= A[k,m]^T * B[k,n]  (shared micro-kernel, A packed transposed).
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out,
                    bool accumulate = false);

// Allocating wrapper over matmul_into.
Tensor matmul(const Tensor& a, const Tensor& b);

// Single-threaded unblocked triple-loop kernel, kept as the numerical
// reference for the tiled matmul (tests, bench_perf).
Tensor matmul_reference(const Tensor& a, const Tensor& b);

// Given dC, accumulate dA += dC * B^T and dB += A^T * dC (composed from the
// nt / tn products above — same tiled core, same determinism contract).
void matmul_backward(const Tensor& a, const Tensor& b, const Tensor& dc,
                     Tensor& da, Tensor& db);

// Serial reference implementation of matmul_backward (tests, bench_perf).
void matmul_backward_reference(const Tensor& a, const Tensor& b,
                               const Tensor& dc, Tensor& da, Tensor& db);

// B[n,m] = A[m,n]^T
Tensor transpose(const Tensor& a);

// Out[t, n] = In[t, n] + bias[0, n] (row-broadcast).
Tensor add_row_broadcast(const Tensor& in, const Tensor& bias);

// inout[t, n] += bias[0, n], in place (the allocation-free spelling).
void add_row_broadcast_inplace(Tensor& inout, const Tensor& bias);

// dBias[0, n] += column sums of dOut.
void add_row_broadcast_backward(const Tensor& dout, Tensor& dbias);

// Row-wise softmax. Numerically stabilized (max subtraction).
Tensor softmax_rows(const Tensor& logits);
void softmax_rows_into(const Tensor& logits, Tensor& out);

// Backward through row-wise softmax: dIn = softmax ⊙ (dOut − rowdot(dOut, softmax)).
Tensor softmax_rows_backward(const Tensor& softmax_out, const Tensor& dout);
void softmax_rows_backward_into(const Tensor& softmax_out, const Tensor& dout,
                                Tensor& din);

// GELU (tanh approximation) forward / backward.
Tensor gelu(const Tensor& in);
void gelu_into(const Tensor& in, Tensor& out);
Tensor gelu_backward(const Tensor& in, const Tensor& dout);
void gelu_backward_into(const Tensor& in, const Tensor& dout, Tensor& din);

// ReLU forward / backward (kept for ablation/testing).
Tensor relu(const Tensor& in);
Tensor relu_backward(const Tensor& in, const Tensor& dout);

// Row-wise layer normalization (no affine; the nn::LayerNorm module owns
// gain/bias). eps stabilizes the variance.
struct LayerNormCache {
  Tensor normalized;           // (x - mean) / sqrt(var + eps)
  std::vector<float> inv_std;  // per-row 1/sqrt(var + eps)
};
Tensor layernorm_rows(const Tensor& in, float eps, LayerNormCache* cache);
void layernorm_rows_into(const Tensor& in, float eps, LayerNormCache* cache,
                         Tensor& out);
Tensor layernorm_rows_backward(const Tensor& dout, const LayerNormCache& cache);
void layernorm_rows_backward_into(const Tensor& dout, const LayerNormCache& cache,
                                  Tensor& din);

// Elementwise binary/unary convenience (allocating).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul_elem(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// out = a + b, written in full (allocation-free spelling; out is reshaped).
void add_into(const Tensor& a, const Tensor& b, Tensor& out);

// out = a * s, written in full (out is reshaped).
void scale_into(const Tensor& a, float s, Tensor& out);

// Mean over rows: out[0, n] = mean_t in[t, n].
Tensor mean_rows(const Tensor& in);

// Cosine similarity between two equal-length vectors given as [1, n] (or any
// equal-shape tensors, flattened). Returns 0 if either has zero norm.
float cosine_similarity(const Tensor& a, const Tensor& b);

// Double-precision Σ xᵢ² and Σ aᵢ·bᵢ — the same accumulations
// cosine_similarity performs internally, exposed so callers can cache norms
// and reduce each cosine to a single dot product (buffer IDD fast path).
double sum_squares(const Tensor& a);
double dot(const Tensor& a, const Tensor& b);

}  // namespace odlp::tensor
