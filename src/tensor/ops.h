// Forward and backward kernels over rank-2 tensors.
//
// Every forward kernel has a matching backward kernel taking the upstream
// gradient and producing gradients w.r.t. its inputs, so modules can compose
// them into exact backprop without an autograd graph. All kernels are
// verified against finite differences in tests/test_gradcheck.cpp.
#pragma once

#include "tensor/tensor.h"

namespace odlp::tensor {

// C[m,n] = A[m,k] * B[k,n]. Cache-blocked and parallelized over row panels
// on the util::ThreadPool; per-element accumulation order is fixed
// (ascending k), so the result is bit-identical for any thread count.
Tensor matmul(const Tensor& a, const Tensor& b);

// Single-threaded unblocked triple-loop kernel, kept as the numerical
// reference for the blocked/parallel matmul (tests, bench_perf).
Tensor matmul_reference(const Tensor& a, const Tensor& b);

// Given dC, accumulate dA += dC * B^T and dB += A^T * dC. Parallelized over
// the rows of dA and dB respectively (disjoint writes).
void matmul_backward(const Tensor& a, const Tensor& b, const Tensor& dc,
                     Tensor& da, Tensor& db);

// Serial reference implementation of matmul_backward (tests, bench_perf).
void matmul_backward_reference(const Tensor& a, const Tensor& b,
                               const Tensor& dc, Tensor& da, Tensor& db);

// B[n,m] = A[m,n]^T
Tensor transpose(const Tensor& a);

// Out[t, n] = In[t, n] + bias[0, n] (row-broadcast).
Tensor add_row_broadcast(const Tensor& in, const Tensor& bias);

// dBias[0, n] += column sums of dOut.
void add_row_broadcast_backward(const Tensor& dout, Tensor& dbias);

// Row-wise softmax. Numerically stabilized (max subtraction).
Tensor softmax_rows(const Tensor& logits);

// Backward through row-wise softmax: dIn = softmax ⊙ (dOut − rowdot(dOut, softmax)).
Tensor softmax_rows_backward(const Tensor& softmax_out, const Tensor& dout);

// GELU (tanh approximation) forward / backward.
Tensor gelu(const Tensor& in);
Tensor gelu_backward(const Tensor& in, const Tensor& dout);

// ReLU forward / backward (kept for ablation/testing).
Tensor relu(const Tensor& in);
Tensor relu_backward(const Tensor& in, const Tensor& dout);

// Row-wise layer normalization (no affine; the nn::LayerNorm module owns
// gain/bias). eps stabilizes the variance.
struct LayerNormCache {
  Tensor normalized;           // (x - mean) / sqrt(var + eps)
  std::vector<float> inv_std;  // per-row 1/sqrt(var + eps)
};
Tensor layernorm_rows(const Tensor& in, float eps, LayerNormCache* cache);
Tensor layernorm_rows_backward(const Tensor& dout, const LayerNormCache& cache);

// Elementwise binary/unary convenience (allocating).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul_elem(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// Mean over rows: out[0, n] = mean_t in[t, n].
Tensor mean_rows(const Tensor& in);

// Cosine similarity between two equal-length vectors given as [1, n] (or any
// equal-shape tensors, flattened). Returns 0 if either has zero norm.
float cosine_similarity(const Tensor& a, const Tensor& b);

// Double-precision Σ xᵢ² and Σ aᵢ·bᵢ — the same accumulations
// cosine_similarity performs internally, exposed so callers can cache norms
// and reduce each cosine to a single dot product (buffer IDD fast path).
double sum_squares(const Tensor& a);
double dot(const Tensor& a, const Tensor& b);

}  // namespace odlp::tensor
