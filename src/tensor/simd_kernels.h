// Internal: per-ISA kernel entry points shared between the dispatching TUs
// (ops.cpp / qops.cpp) and the AVX2 TUs (ops_avx2.cpp / qops_avx2.cpp, built
// with -mavx2 -O3 -ffp-contract=off — see src/CMakeLists.txt). Keeping the
// AVX2 bodies in their own TUs means the rest of the library never emits AVX
// instructions, so the binary still runs on SSE2-only hosts; the dispatcher
// only calls these after tensor::active_simd_level() confirms AVX2.
//
// Every entry here is bit-identical to its portable sibling: the fp32 micro
// kernel performs the same per-element multiply/add sequence (no FMA — the
// TU is compiled -ffp-contract=off and uses explicit mul+add intrinsics),
// and the int8 kernels produce exact int32 block sums feeding the shared
// fp32 fixup expression.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define ODLP_SIMD_KERNELS_X86 1
#endif

namespace odlp::tensor::detail {

#ifdef ODLP_SIMD_KERNELS_X86

// acc[4*8] += A-quad [kc*4] × B-panel [kc*8]; the AVX2 build of ops.cpp's
// micro_kernel (4×8 tile == four ymm accumulators). Geometry must match
// ops.cpp's kMR=4 / kNR=8.
void micro_kernel_avx2(const float* ap, const float* bp, std::size_t kc,
                       float* acc);

#ifdef ODLP_INT8
// AVX2 vpmaddubsw(+vpmaddwd) builds of qops.cpp's int8 row kernels. Same
// signature contract as the scalar/SSE2 variants: C rows [i0, i1) of
// out (+)= X[m,K] · Q(W)[K,N], with qx the int16-widened row codes, sx the
// per-row activation scales, and sw the per-(block, col) weight scales.
void qgemm_small_rows_avx2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1);
void qgemm_tiled_rows_avx2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1);

#ifdef ODLP_HAVE_AVXVNNI
// AVX-VNNI vpdpbusd build of the tiled kernel (qops_vnni.cpp, -mavxvnni).
// Same exact-int32-block-sum contract; there is deliberately no VNNI small
// path — the m<4 GEMV step is weight-streaming-bound, so kVnni dispatches it
// to qgemm_small_rows_avx2 (the win concentrates where rows amortize the
// stream).
void qgemm_tiled_rows_vnni(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1);
#endif  // ODLP_HAVE_AVXVNNI
#endif  // ODLP_INT8

#endif  // ODLP_SIMD_KERNELS_X86

}  // namespace odlp::tensor::detail
