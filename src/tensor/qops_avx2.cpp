// AVX2 builds of the int8 GEMM row kernels (vpmaddubsw + vpmaddwd k-quad
// step). Compiled -mavx2 -O3 -ffp-contract=off in its own TU
// (src/CMakeLists.txt) so no AVX instruction leaks into the portable build;
// the dispatcher in qops.cpp only calls in here once active_simd_level()
// confirms AVX2.
//
// Per k-quad (four consecutive k positions inside one quant block) and
// 16-column tile, the weight rows are shuffled into per-column k-quads
// (one 32-bit lane = the 4 weights of one column) and each activation quad
// is broadcast twice: |x| bytes as the unsigned vpmaddubsw operand and the
// raw bytes as a sign source. vpsignb folds the activation signs into the
// weights — exact because quantized codes never reach −128 (QuantizedTensor
// clamps to ±127, qops.cpp clamps activations to ±127) — then
// vpmaddubsw(|x|, sign(w,x)) forms int16 pair sums (max |127·127·2| = 32258,
// no saturation) and vpmaddwd against ones collapses them into one int32 per
// column. Integer sums are exact in any order, so the per-block accumulators
// are bit-identical to the scalar/SSE2/reference kernels and the shared fp32
// fixup line keeps the whole product bit-exact across dispatch levels.
#include "tensor/simd_kernels.h"

#if defined(ODLP_SIMD_KERNELS_X86) && defined(ODLP_INT8)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/qtensor.h"  // kQuantBlock

namespace odlp::tensor::detail {

namespace {

// Same register tile as qops.cpp: 4 C rows × 16 int32 accumulators.
constexpr std::size_t kQMR = 4;
constexpr std::size_t kQNR = 16;

// Loads a 4(k) × 16(col) int8 weight tile (row stride `stride`) and shuffles
// it into per-column k-quads: q07 columns 0..7, q8f columns 8..15, each
// 32-bit lane holding one column's four consecutive-k weights in k order.
inline void load_kquad_tile(const std::int8_t* w, std::size_t stride,
                            __m256i& q07, __m256i& q8f) {
  const __m128i r0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i r1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + stride));
  const __m128i r2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 2 * stride));
  const __m128i r3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 3 * stride));
  const __m128i lo01 = _mm_unpacklo_epi8(r0, r1);  // (w0,w1) pairs, cols 0..7
  const __m128i hi01 = _mm_unpackhi_epi8(r0, r1);  // cols 8..15
  const __m128i lo23 = _mm_unpacklo_epi8(r2, r3);  // (w2,w3) pairs, cols 0..7
  const __m128i hi23 = _mm_unpackhi_epi8(r2, r3);  // cols 8..15
  q07 = _mm256_set_m128i(_mm_unpackhi_epi16(lo01, lo23),   // cols 4..7
                         _mm_unpacklo_epi16(lo01, lo23));  // cols 0..3
  q8f = _mm256_set_m128i(_mm_unpackhi_epi16(hi01, hi23),   // cols 12..15
                         _mm_unpacklo_epi16(hi01, hi23));  // cols 8..11
}

// Broadcasts one activation k-quad into every 32-bit lane: xabs carries the
// magnitudes (unsigned vpmaddubsw operand), xsgn the raw signed bytes
// (vpsignb source). Codes are int16 in storage but always fit int8 (±127).
inline void broadcast_kquad(const std::int16_t* x, __m256i& xabs,
                            __m256i& xsgn) {
  const std::int32_t x0 = x[0], x1 = x[1], x2 = x[2], x3 = x[3];
  const auto raw8 = [](std::int32_t v) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(v));
  };
  const auto abs8 = [](std::int32_t v) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(v < 0 ? -v : v));
  };
  xabs = _mm256_set1_epi32(static_cast<std::int32_t>(
      abs8(x0) | (abs8(x1) << 8) | (abs8(x2) << 16) | (abs8(x3) << 24)));
  xsgn = _mm256_set1_epi32(static_cast<std::int32_t>(
      raw8(x0) | (raw8(x1) << 8) | (raw8(x2) << 16) | (raw8(x3) << 24)));
}

// acc[lane] += Σ_{q<4} x_q · w_q for the column in that lane. vpsignb also
// zeroes weights where x == 0, which is exact since |x| = 0 there anyway.
inline __m256i kquad_dot(__m256i xabs, __m256i xsgn, __m256i wq, __m256i acc,
                         __m256i ones) {
  const __m256i signed_w = _mm256_sign_epi8(wq, xsgn);
  const __m256i pairs = _mm256_maddubs_epi16(xabs, signed_w);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
}

}  // namespace

void qgemm_small_rows_avx2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t i = i0; i < i1; ++i) {
    float* __restrict__ crow = c + i * ldc;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    const std::int16_t* qrow = qx + i * K;
    const float sxr = sx[i];
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const std::size_t quad_end = p0 + ((p1 - p0) & ~std::size_t{3});
      const std::size_t nquads = (quad_end - p0) / 4;
      const float* __restrict__ swb = sw + kb * N;
      // The activation k-quads depend only on k: pack them once per block
      // and reuse across every column tile, so the hot loop touches only
      // weight bytes and accumulators.
      __m256i xab[kQuantBlock / 4], xsg[kQuantBlock / 4];
      for (std::size_t q = 0; q < nquads; ++q) {
        broadcast_kquad(qrow + p0 + 4 * q, xab[q], xsg[q]);
      }
      std::size_t j0 = 0;
      for (; j0 + kQNR <= N; j0 += kQNR) {
        __m256i acc07 = _mm256_setzero_si256();
        __m256i acc8f = _mm256_setzero_si256();
        for (std::size_t q = 0; q < nquads; ++q) {
          __m256i q07, q8f;
          load_kquad_tile(qw + (p0 + 4 * q) * N + j0, N, q07, q8f);
          acc07 = kquad_dot(xab[q], xsg[q], q07, acc07, ones);
          acc8f = kquad_dot(xab[q], xsg[q], q8f, acc8f, ones);
        }
        alignas(32) std::int32_t acc[kQNR];
        _mm256_store_si256(reinterpret_cast<__m256i*>(acc), acc07);
        _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 8), acc8f);
        // Block-length % 4 tail: integer adds are exact in any order, so
        // finishing the stragglers scalar keeps the block sum bit-identical.
        for (std::size_t p = quad_end; p < p1; ++p) {
          const std::int32_t xv = qrow[p];
          const std::int8_t* __restrict__ wrow = qw + p * N + j0;
          for (std::size_t j = 0; j < kQNR; ++j) {
            acc[j] += xv * static_cast<std::int32_t>(wrow[j]);
          }
        }
        float* __restrict__ cj = crow + j0;
        const float* __restrict__ swt = swb + j0;
        for (std::size_t j = 0; j < kQNR; ++j) {
          cj[j] += sxr * swt[j] * static_cast<float>(acc[j]);
        }
      }
      for (; j0 < N; ++j0) {
        std::int32_t acc = 0;
        for (std::size_t p = p0; p < p1; ++p) {
          acc += static_cast<std::int32_t>(qrow[p]) *
                 static_cast<std::int32_t>(qw[p * N + j0]);
        }
        crow[j0] += sxr * swb[j0] * static_cast<float>(acc);
      }
    }
  }
}

void qgemm_tiled_rows_avx2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t i = i0; i < i1; i += kQMR) {
    const std::size_t mr = std::min(kQMR, i1 - i);
    if (!accumulate) {
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * ldc;
        std::fill(crow, crow + N, 0.0f);
      }
    }
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const std::size_t quad_end = p0 + ((p1 - p0) & ~std::size_t{3});
      const std::size_t nquads = (quad_end - p0) / 4;
      const float* __restrict__ swb = sw + kb * N;
      // Activation k-quads depend only on (row, k): pack all four rows'
      // quads once per block and reuse them across every column tile. This
      // is the batching payoff — the hot loop streams weight bytes once and
      // amortizes both the stream and the tile shuffle over four C rows.
      __m256i xab[kQMR][kQuantBlock / 4], xsg[kQMR][kQuantBlock / 4];
      if (mr == kQMR) {
        for (std::size_t r = 0; r < kQMR; ++r) {
          for (std::size_t q = 0; q < nquads; ++q) {
            broadcast_kquad(qx + (i + r) * K + p0 + 4 * q, xab[r][q],
                            xsg[r][q]);
          }
        }
      }
      for (std::size_t j0 = 0; j0 < N; j0 += kQNR) {
        const std::size_t nr = std::min(kQNR, N - j0);
        std::int32_t acc[kQMR * kQNR] = {};
        if (mr == kQMR && nr == kQNR) {
          // The shuffled weight tile is shared across the four C rows.
          __m256i vacc[kQMR][2];
          for (std::size_t r = 0; r < kQMR; ++r) {
            vacc[r][0] = _mm256_setzero_si256();
            vacc[r][1] = _mm256_setzero_si256();
          }
          for (std::size_t q = 0; q < nquads; ++q) {
            __m256i q07, q8f;
            load_kquad_tile(qw + (p0 + 4 * q) * N + j0, N, q07, q8f);
            for (std::size_t r = 0; r < kQMR; ++r) {
              vacc[r][0] = kquad_dot(xab[r][q], xsg[r][q], q07, vacc[r][0], ones);
              vacc[r][1] = kquad_dot(xab[r][q], xsg[r][q], q8f, vacc[r][1], ones);
            }
          }
          for (std::size_t r = 0; r < kQMR; ++r) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(acc + r * kQNR), vacc[r][0]);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(acc + r * kQNR + 8), vacc[r][1]);
          }
          for (std::size_t p = quad_end; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < kQMR; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < kQNR; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        } else {
          for (std::size_t p = p0; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < mr; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < nr; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        }
        for (std::size_t r = 0; r < mr; ++r) {
          float* __restrict__ crow = c + (i + r) * ldc + j0;
          const float sxr = sx[i + r];
          const float* __restrict__ swt = swb + j0;
          const std::int32_t* arow = acc + r * kQNR;
          for (std::size_t j = 0; j < nr; ++j) {
            crow[j] += sxr * swt[j] * static_cast<float>(arow[j]);
          }
        }
      }
    }
  }
}

}  // namespace odlp::tensor::detail

#endif  // ODLP_SIMD_KERNELS_X86 && ODLP_INT8
