#include "tensor/gradcheck.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace odlp::tensor {

GradCheckResult check_gradient(Tensor& param, const Tensor& analytic_grad,
                               const std::function<double()>& loss_fn,
                               float epsilon, std::size_t max_probes) {
  assert(param.same_shape(analytic_grad));
  GradCheckResult result;
  const std::size_t n = param.size();
  if (n == 0) return result;
  const std::size_t stride = std::max<std::size_t>(1, n / std::max<std::size_t>(1, max_probes));
  for (std::size_t i = 0; i < n; i += stride) {
    const float saved = param.data()[i];
    param.data()[i] = saved + epsilon;
    const double loss_plus = loss_fn();
    param.data()[i] = saved - epsilon;
    const double loss_minus = loss_fn();
    param.data()[i] = saved;
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    const double analytic = analytic_grad.data()[i];
    const double abs_err = std::fabs(analytic - numeric);
    // Denominator floors at 0.1: for small gradients this degrades into a
    // scaled absolute error, which is the right behaviour for float32
    // forward passes whose fd noise floor is ~1e-3.
    const double rel_err =
        abs_err / std::max(0.1, std::fabs(analytic) + std::fabs(numeric));
    result.max_abs_error = std::max(result.max_abs_error, static_cast<float>(abs_err));
    result.max_rel_error = std::max(result.max_rel_error, static_cast<float>(rel_err));
    ++result.checked;
  }
  return result;
}

}  // namespace odlp::tensor
