// A minimal dense float tensor (row-major) used by the neural-net substrate.
//
// The library deliberately keeps tensors rank-2 ([rows, cols]); a token
// sequence is [T, D], a weight matrix is [In, Out], and batching is handled
// one sequence at a time by the trainer. This keeps the manual backward
// passes simple and auditable. Rank-1 tensors are represented as [1, n].
//
// Storage notes for the hot path:
//  * Every heap acquisition made on behalf of a tensor goes through one
//    counting allocator, so `allocation_count()` gives an exact probe of
//    allocator pressure (bench_perf reports allocations per training step).
//  * `uninitialized()` / `resize_uninitialized()` skip the zero-fill for
//    outputs that a kernel overwrites in full, so such tensors are touched
//    exactly once (see tensor::matmul_into).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace odlp::tensor {

// Process-wide count of heap allocations made for tensor storage (relaxed
// atomic; cheap enough to leave on everywhere). Monotone; probe deltas.
std::uint64_t allocation_count();

namespace detail {

void note_allocation();

// std::allocator<float> with two twists: allocations are counted, and
// value-less construct() performs default-initialization (a no-op for
// float), which is what lets resize_uninitialized() skip the zero pass.
template <typename T>
struct CountingDefaultInitAllocator {
  using value_type = T;

  CountingDefaultInitAllocator() = default;
  template <typename U>
  CountingDefaultInitAllocator(const CountingDefaultInitAllocator<U>&) {}

  T* allocate(std::size_t n) {
    note_allocation();
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, std::size_t n) { std::allocator<T>().deallocate(p, n); }

  template <typename U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  template <typename U>
  bool operator==(const CountingDefaultInitAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const CountingDefaultInitAllocator<U>&) const {
    return false;
  }
};

}  // namespace detail

class Tensor {
 public:
  using Buffer = std::vector<float, detail::CountingDefaultInitAllocator<float>>;

  Tensor() : rows_(0), cols_(0) {}
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  // Build from an explicit row-major initializer (size must be rows*cols).
  static Tensor from(std::size_t rows, std::size_t cols, std::vector<float> values);
  // Shape without zero-filling: element values are unspecified until
  // written. Only for outputs a kernel overwrites in full.
  static Tensor uninitialized(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float v);
  void zero() { fill(0.0f); }

  // Reshape in place without initializing newly exposed elements. Keeps the
  // existing heap block whenever capacity suffices, so a warmed tensor (or
  // Workspace slot) reshapes allocation-free. Contents are unspecified.
  void resize_uninitialized(std::size_t rows, std::size_t cols);

  // Elementwise in-place updates.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  // this += s * other (axpy). Shapes must match.
  void add_scaled(const Tensor& other, float s);

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Frobenius norms / summaries, used by tests and gradient clipping.
  float l2_norm() const;
  float abs_max() const;
  float sum() const;
  float mean() const;

  std::string shape_string() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  Buffer data_;
};

}  // namespace odlp::tensor
