// A minimal dense float tensor (row-major) used by the neural-net substrate.
//
// The library deliberately keeps tensors rank-2 ([rows, cols]); a token
// sequence is [T, D], a weight matrix is [In, Out], and batching is handled
// one sequence at a time by the trainer. This keeps the manual backward
// passes simple and auditable. Rank-1 tensors are represented as [1, n].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace odlp::tensor {

class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  // Build from an explicit row-major initializer (size must be rows*cols).
  static Tensor from(std::size_t rows, std::size_t cols, std::vector<float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float v);
  void zero() { fill(0.0f); }

  // Elementwise in-place updates.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  // this += s * other (axpy). Shapes must match.
  void add_scaled(const Tensor& other, float s);

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Frobenius norms / summaries, used by tests and gradient clipping.
  float l2_norm() const;
  float abs_max() const;
  float sum() const;
  float mean() const;

  std::string shape_string() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<float> data_;
};

}  // namespace odlp::tensor
