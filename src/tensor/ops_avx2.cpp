// AVX2 build of the fp32 GEMM micro-kernel. This TU is compiled with
// -mavx2 -O3 -ffp-contract=off (src/CMakeLists.txt): isolated so the rest of
// the library stays runnable on SSE2-only hosts, -ffp-contract=off plus
// explicit mul+add intrinsics (never _mm256_fmadd_ps) so results cannot
// diverge from the portable micro_kernel — per output element both perform
// the identical `acc += a*b` float sequence in ascending k, making the
// dispatch level invisible in the results (DESIGN.md §12).
#include "tensor/simd_kernels.h"

#ifdef ODLP_SIMD_KERNELS_X86

#include <immintrin.h>

namespace odlp::tensor::detail {

void micro_kernel_avx2(const float* ap, const float* bp, std::size_t kc,
                       float* acc) {
  // One ymm per C row of the 4×8 tile; the packed A quad supplies four
  // broadcast scalars per k step, the packed B panel one 8-wide row.
  __m256 c0 = _mm256_loadu_ps(acc + 0);
  __m256 c1 = _mm256_loadu_ps(acc + 8);
  __m256 c2 = _mm256_loadu_ps(acc + 16);
  __m256 c3 = _mm256_loadu_ps(acc + 24);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b = _mm256_loadu_ps(bp);
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(ap + 0), b));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(ap + 1), b));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(ap + 2), b));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(ap + 3), b));
    ap += 4;
    bp += 8;
  }
  _mm256_storeu_ps(acc + 0, c0);
  _mm256_storeu_ps(acc + 8, c1);
  _mm256_storeu_ps(acc + 16, c2);
  _mm256_storeu_ps(acc + 24, c3);
}

}  // namespace odlp::tensor::detail

#endif  // ODLP_SIMD_KERNELS_X86
