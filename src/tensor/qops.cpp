// INT8 GEMM kernels. Like ops.cpp this TU is compiled -O3 -ffp-contract=off
// (see src/CMakeLists.txt): -O3 so the fixed-trip integer inner loops widen
// and vectorize, -ffp-contract=off so the fp32 scale fixup cannot contract
// into FMA and break the bit-exactness contract against the reference.
//
// On x86-64 the hot loops use SSE2 intrinsics directly (pmaddwd computes
// x0·w[j] + x1·w[j+stride] on int16 pairs — exactly this kernel's k-pair
// step; the compiler does not find that form from the scalar loop because
// the int8→int32 widening chain blocks its dot-product pattern). Integer
// block sums are exact in any evaluation order, so the vector and scalar
// forms produce bit-identical int32 accumulators and the fp32 fixup — the
// only inexact step — is shared verbatim; tests/test_quantized_equivalence
// asserts the paths agree bit-for-bit.
//
// qmatmul_into picks among the scalar / SSE2 variants here and the AVX2
// vpmaddubsw variants in qops_avx2.cpp at call time via
// tensor::active_simd_level() (tensor/simd.h, DESIGN.md §12); the dispatch
// level never changes results, only throughput.
#include "tensor/qops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/simd.h"
#include "tensor/simd_kernels.h"
#include "util/thread_pool.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define ODLP_QOPS_SSE2 1
#endif

namespace odlp::tensor {

namespace {

// Same fan-out threshold as the fp32 GEMM (2·m·k·n flops); path selection is
// keyed on shape only, never on the lane count.
constexpr std::size_t kQMatmulParallelMinFlops = 1u << 17;

// Register tile: kQMR C rows × kQNR int32 accumulators, held across one
// 32-deep k-block (64 int32 = 16 SSE registers' worth).
constexpr std::size_t kQMR = 4;
constexpr std::size_t kQNR = 16;

// Dynamically quantized activations: one symmetric scale per row, codes
// pre-widened to int16 (the operand width the SSE2-baseline widening
// multiply wants). Reused as a thread_local so decode steps don't allocate.
struct QuantizedRows {
  std::vector<std::int16_t> values;
  std::vector<float> scales;
};

void quantize_rows(const Tensor& x, QuantizedRows& out) {
  const std::size_t m = x.rows(), k = x.cols();
  if (out.values.size() < m * k) out.values.resize(m * k);
  if (out.scales.size() < m) out.scales.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x.row(i);
    float amax = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      amax = std::max(amax, std::fabs(row[p]));
    }
    const float scale = amax / 127.0f;
    out.scales[i] = scale;
    float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    if (!std::isfinite(inv)) inv = 0.0f;  // denormal amax: degrade to zeros
    std::int16_t* qrow = out.values.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const long q = std::lround(row[p] * inv);
      qrow[p] = static_cast<std::int16_t>(std::clamp<long>(q, -127, 127));
    }
  }
}

#ifdef ODLP_QOPS_SSE2
// Broadcasts the (x0, x1) activation pair into every int16 lane-pair of an
// XMM register, the left operand pmaddwd wants.
inline __m128i broadcast_pair(std::int32_t x0, std::int32_t x1) {
  return _mm_set1_epi32(static_cast<std::int32_t>(
      static_cast<std::uint16_t>(x0) |
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(x1)) << 16)));
}

// Sign-extends 16 int8 weights to two int16x8 halves (SSE2 has no pmovsxbw;
// unpack into the high byte and shift arithmetically back down).
inline void widen_i8x16(const std::int8_t* w, __m128i& lo, __m128i& hi) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, raw), 8);
  hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, raw), 8);
}

// acc[j..j+3] += x0·w0[j] + x1·w1[j] for the four int32 lanes of `acc`,
// where `iw` holds interleaved (w0[j], w1[j]) int16 pairs.
inline void madd_accumulate(__m128i* acc, __m128i xp, __m128i iw) {
  _mm_storeu_si128(acc, _mm_add_epi32(_mm_loadu_si128(acc),
                                      _mm_madd_epi16(xp, iw)));
}
#endif  // ODLP_QOPS_SSE2

// m < kQMR rows (the m=1 decode step): stream the whole weight once per row,
// j-inner with the k loop advanced two weight rows at a time. Per k-block
// the int32 accumulator row is exact, then the fp32 fixup adds sx·sw·acc in
// ascending block order. Odd-length block tails reuse the k-pair body with
// x1 = 0 (and w1 aliased to w0 so the dead load stays in bounds).
//
// Each kernel comes in per-SIMD-level variants with an identical signature
// (scalar and, on x86, SSE2 here; AVX2 in qops_avx2.cpp); qmatmul_into picks
// one per call from tensor::active_simd_level(). The integer block sums are
// exact in every variant, so the level is invisible in the results.
void qgemm_small_rows_scalar(const std::int16_t* qx, const float* sx,
                             std::size_t K, std::size_t N,
                             const std::int8_t* qw, const float* sw,
                             std::size_t nblocks, float* c, std::size_t ldc,
                             bool accumulate, std::size_t i0, std::size_t i1) {
  thread_local std::vector<std::int32_t> accbuf;
  if (accbuf.size() < N) accbuf.resize(N);
  std::int32_t* __restrict__ acc = accbuf.data();
  for (std::size_t i = i0; i < i1; ++i) {
    float* __restrict__ crow = c + i * ldc;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    const std::int16_t* qrow = qx + i * K;
    const float sxr = sx[i];
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      std::memset(acc, 0, N * sizeof(std::int32_t));
      for (std::size_t p = p0; p < p1; p += 2) {
        const bool has_pair = p + 1 < p1;
        const std::int32_t x0 = qrow[p];
        const std::int32_t x1 = has_pair ? qrow[p + 1] : 0;
        const std::int8_t* __restrict__ w0 = qw + p * N;
        const std::int8_t* __restrict__ w1 = has_pair ? w0 + N : w0;
        for (std::size_t j = 0; j < N; ++j) {
          acc[j] += x0 * static_cast<std::int32_t>(w0[j]) +
                    x1 * static_cast<std::int32_t>(w1[j]);
        }
      }
      const float* __restrict__ swb = sw + kb * N;
      for (std::size_t j = 0; j < N; ++j) {
        crow[j] += sxr * swb[j] * static_cast<float>(acc[j]);
      }
    }
  }
}

#ifdef ODLP_QOPS_SSE2
void qgemm_small_rows_sse2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1) {
  thread_local std::vector<std::int32_t> accbuf;
  if (accbuf.size() < N) accbuf.resize(N);
  std::int32_t* __restrict__ acc = accbuf.data();
  for (std::size_t i = i0; i < i1; ++i) {
    float* __restrict__ crow = c + i * ldc;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    const std::int16_t* qrow = qx + i * K;
    const float sxr = sx[i];
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      std::memset(acc, 0, N * sizeof(std::int32_t));
      for (std::size_t p = p0; p < p1; p += 2) {
        const bool has_pair = p + 1 < p1;
        const std::int32_t x0 = qrow[p];
        const std::int32_t x1 = has_pair ? qrow[p + 1] : 0;
        const std::int8_t* __restrict__ w0 = qw + p * N;
        const std::int8_t* __restrict__ w1 = has_pair ? w0 + N : w0;
        std::size_t j = 0;
        const __m128i xp = broadcast_pair(x0, x1);
        for (; j + 16 <= N; j += 16) {
          __m128i a0lo, a0hi, a1lo, a1hi;
          widen_i8x16(w0 + j, a0lo, a0hi);
          widen_i8x16(w1 + j, a1lo, a1hi);
          __m128i* ap = reinterpret_cast<__m128i*>(acc + j);
          madd_accumulate(ap + 0, xp, _mm_unpacklo_epi16(a0lo, a1lo));
          madd_accumulate(ap + 1, xp, _mm_unpackhi_epi16(a0lo, a1lo));
          madd_accumulate(ap + 2, xp, _mm_unpacklo_epi16(a0hi, a1hi));
          madd_accumulate(ap + 3, xp, _mm_unpackhi_epi16(a0hi, a1hi));
        }
        for (; j < N; ++j) {
          acc[j] += x0 * static_cast<std::int32_t>(w0[j]) +
                    x1 * static_cast<std::int32_t>(w1[j]);
        }
      }
      const float* __restrict__ swb = sw + kb * N;
      for (std::size_t j = 0; j < N; ++j) {
        crow[j] += sxr * swb[j] * static_cast<float>(acc[j]);
      }
    }
  }
}
#endif  // ODLP_QOPS_SSE2

// m ≥ kQMR: quads of C rows × kQNR-wide column tiles share one streamed
// weight block; acc[kQMR][kQNR] int32 lives in registers across the 32-deep
// k loop, then the fp32 fixup runs per (block, tile). Per output element the
// work and fixup order are identical to the small path — only the traversal
// is tiled — so both paths (and any row partition) are bit-identical.
void qgemm_tiled_rows_scalar(const std::int16_t* qx, const float* sx,
                             std::size_t K, std::size_t N,
                             const std::int8_t* qw, const float* sw,
                             std::size_t nblocks, float* c, std::size_t ldc,
                             bool accumulate, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; i += kQMR) {
    const std::size_t mr = std::min(kQMR, i1 - i);
    if (!accumulate) {
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * ldc;
        std::fill(crow, crow + N, 0.0f);
      }
    }
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const float* __restrict__ swb = sw + kb * N;
      for (std::size_t j0 = 0; j0 < N; j0 += kQNR) {
        const std::size_t nr = std::min(kQNR, N - j0);
        std::int32_t acc[kQMR * kQNR] = {};
        if (mr == kQMR && nr == kQNR) {
          for (std::size_t p = p0; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            const std::int32_t x0 = qx[(i + 0) * K + p];
            const std::int32_t x1 = qx[(i + 1) * K + p];
            const std::int32_t x2 = qx[(i + 2) * K + p];
            const std::int32_t x3 = qx[(i + 3) * K + p];
            for (std::size_t j = 0; j < kQNR; ++j) {
              const std::int32_t wv = wrow[j];
              acc[0 * kQNR + j] += x0 * wv;
              acc[1 * kQNR + j] += x1 * wv;
              acc[2 * kQNR + j] += x2 * wv;
              acc[3 * kQNR + j] += x3 * wv;
            }
          }
        } else {
          for (std::size_t p = p0; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < mr; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < nr; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        }
        for (std::size_t r = 0; r < mr; ++r) {
          float* __restrict__ crow = c + (i + r) * ldc + j0;
          const float sxr = sx[i + r];
          const float* __restrict__ swt = swb + j0;
          const std::int32_t* arow = acc + r * kQNR;
          for (std::size_t j = 0; j < nr; ++j) {
            crow[j] += sxr * swt[j] * static_cast<float>(arow[j]);
          }
        }
      }
    }
  }
}

#ifdef ODLP_QOPS_SSE2
void qgemm_tiled_rows_sse2(const std::int16_t* qx, const float* sx,
                           std::size_t K, std::size_t N, const std::int8_t* qw,
                           const float* sw, std::size_t nblocks, float* c,
                           std::size_t ldc, bool accumulate, std::size_t i0,
                           std::size_t i1) {
  for (std::size_t i = i0; i < i1; i += kQMR) {
    const std::size_t mr = std::min(kQMR, i1 - i);
    if (!accumulate) {
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * ldc;
        std::fill(crow, crow + N, 0.0f);
      }
    }
    for (std::size_t kb = 0; kb < nblocks; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const float* __restrict__ swb = sw + kb * N;
      for (std::size_t j0 = 0; j0 < N; j0 += kQNR) {
        const std::size_t nr = std::min(kQNR, N - j0);
        std::int32_t acc[kQMR * kQNR] = {};
        if (mr == kQMR && nr == kQNR) {
          // Same k-pair pmaddwd step as the small path, with the widened +
          // interleaved weight tile shared across the four C rows.
          __m128i vacc[kQMR][4];
          for (std::size_t r = 0; r < kQMR; ++r) {
            for (std::size_t t = 0; t < 4; ++t) {
              vacc[r][t] = _mm_setzero_si128();
            }
          }
          for (std::size_t p = p0; p < p1; p += 2) {
            const bool has_pair = p + 1 < p1;
            const std::int8_t* __restrict__ w0 = qw + p * N + j0;
            const std::int8_t* __restrict__ w1 = has_pair ? w0 + N : w0;
            __m128i a0lo, a0hi, a1lo, a1hi;
            widen_i8x16(w0, a0lo, a0hi);
            widen_i8x16(w1, a1lo, a1hi);
            const __m128i iw[4] = {_mm_unpacklo_epi16(a0lo, a1lo),
                                   _mm_unpackhi_epi16(a0lo, a1lo),
                                   _mm_unpacklo_epi16(a0hi, a1hi),
                                   _mm_unpackhi_epi16(a0hi, a1hi)};
            for (std::size_t r = 0; r < kQMR; ++r) {
              const std::int16_t* xrow = qx + (i + r) * K;
              const __m128i xp = broadcast_pair(
                  xrow[p], has_pair ? xrow[p + 1] : 0);
              for (std::size_t t = 0; t < 4; ++t) {
                vacc[r][t] =
                    _mm_add_epi32(vacc[r][t], _mm_madd_epi16(xp, iw[t]));
              }
            }
          }
          for (std::size_t r = 0; r < kQMR; ++r) {
            for (std::size_t t = 0; t < 4; ++t) {
              _mm_storeu_si128(
                  reinterpret_cast<__m128i*>(acc + r * kQNR + 4 * t),
                  vacc[r][t]);
            }
          }
        } else {
          for (std::size_t p = p0; p < p1; ++p) {
            const std::int8_t* __restrict__ wrow = qw + p * N + j0;
            for (std::size_t r = 0; r < mr; ++r) {
              const std::int32_t xv = qx[(i + r) * K + p];
              for (std::size_t j = 0; j < nr; ++j) {
                acc[r * kQNR + j] += xv * static_cast<std::int32_t>(wrow[j]);
              }
            }
          }
        }
        for (std::size_t r = 0; r < mr; ++r) {
          float* __restrict__ crow = c + (i + r) * ldc + j0;
          const float sxr = sx[i + r];
          const float* __restrict__ swt = swb + j0;
          const std::int32_t* arow = acc + r * kQNR;
          for (std::size_t j = 0; j < nr; ++j) {
            crow[j] += sxr * swt[j] * static_cast<float>(arow[j]);
          }
        }
      }
    }
  }
}
#endif  // ODLP_QOPS_SSE2

// Shared signature of every qgemm row-kernel variant.
using QGemmRowsFn = void (*)(const std::int16_t*, const float*, std::size_t,
                             std::size_t, const std::int8_t*, const float*,
                             std::size_t, float*, std::size_t, bool,
                             std::size_t, std::size_t);

}  // namespace

void qmatmul_into(const Tensor& x, const QuantizedTensor& w, Tensor& out,
                  bool accumulate) {
  assert(w.axis() == QuantAxis::kAlongRows);
  assert(x.cols() == w.rows());
  const std::size_t M = x.rows(), K = x.cols(), N = w.cols();
  if (!accumulate) out.resize_uninitialized(M, N);
  assert(out.rows() == M && out.cols() == N);
  assert(out.data() != x.data());
  if (M == 0 || N == 0) return;
  if (K == 0) {
    if (!accumulate) out.zero();
    return;
  }
  thread_local QuantizedRows qa;
  quantize_rows(x, qa);
  const std::int16_t* qx = qa.values.data();
  const float* sx = qa.scales.data();
  const std::int8_t* qw = w.values();
  const float* sw = w.scales();
  const std::size_t nblocks = w.blocks();
  float* c = out.data();
  const bool tiled = M >= kQMR;
  // Kernel variant selection happens once per call, on the calling thread
  // (pool workers receive the chosen pointer and never read the dispatch
  // atomic). Every variant is bit-identical — exact int32 block sums feeding
  // the shared fp32 fixup — so the level affects throughput only.
  QGemmRowsFn small_fn = qgemm_small_rows_scalar;
  QGemmRowsFn tiled_fn = qgemm_tiled_rows_scalar;
  const SimdLevel level = active_simd_level();
#ifdef ODLP_QOPS_SSE2
  if (level >= SimdLevel::kSse2) {
    small_fn = qgemm_small_rows_sse2;
    tiled_fn = qgemm_tiled_rows_sse2;
  }
#endif
#ifdef ODLP_SIMD_KERNELS_X86
  if (level >= SimdLevel::kAvx2) {
    small_fn = detail::qgemm_small_rows_avx2;
    tiled_fn = detail::qgemm_tiled_rows_avx2;
  }
#ifdef ODLP_HAVE_AVXVNNI
  // kVnni upgrades only the tiled kernel; the small path stays AVX2 (it is
  // weight-streaming-bound — see qops_vnni.cpp).
  if (level >= SimdLevel::kVnni) {
    tiled_fn = detail::qgemm_tiled_rows_vnni;
  }
#endif
#endif
  const QGemmRowsFn rows_fn = tiled ? tiled_fn : small_fn;
  auto run = [&, rows_fn](std::size_t r0, std::size_t r1) {
    rows_fn(qx, sx, K, N, qw, sw, nblocks, c, N, accumulate, r0, r1);
  };
  const std::size_t flops = 2 * M * K * N;
  if (flops < kQMatmulParallelMinFlops) {
    run(0, M);
    return;
  }
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t flops_per_row = 2 * K * N;
  std::size_t grain = std::max<std::size_t>(1, (1u << 15) / flops_per_row);
  const std::size_t min_grain =
      (M + pool.lanes() * 4 - 1) / (pool.lanes() * 4);
  grain = std::max(grain, std::max<std::size_t>(1, min_grain));
  // Quad-align chunks so only the final one runs a partial row quad.
  grain = (grain + kQMR - 1) / kQMR * kQMR;
  pool.parallel_for(0, M, grain, run);
}

Tensor qmatmul(const Tensor& x, const QuantizedTensor& w) {
  Tensor out;
  qmatmul_into(x, w, out);
  return out;
}

Tensor qmatmul_reference(const Tensor& x, const QuantizedTensor& w) {
  assert(w.axis() == QuantAxis::kAlongRows);
  assert(x.cols() == w.rows());
  const std::size_t M = x.rows(), K = x.cols(), N = w.cols();
  Tensor out(M, N, 0.0f);
  if (M == 0 || N == 0 || K == 0) return out;
  QuantizedRows qa;
  quantize_rows(x, qa);
  const std::int8_t* qw = w.values();
  const float* sw = w.scales();
  for (std::size_t i = 0; i < M; ++i) {
    const std::int16_t* qrow = qa.values.data() + i * K;
    const float sxr = qa.scales[i];
    float* crow = out.row(i);
    for (std::size_t kb = 0; kb < w.blocks(); ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(K, p0 + kQuantBlock);
      const float* swb = sw + kb * N;
      for (std::size_t j = 0; j < N; ++j) {
        std::int32_t acc = 0;
        for (std::size_t p = p0; p < p1; ++p) {
          acc += static_cast<std::int32_t>(qrow[p]) *
                 static_cast<std::int32_t>(qw[p * N + j]);
        }
        // The identical fixup expression as the tiled/small kernels — the
        // int32 sum is exact, so this line alone decides bit-equality.
        crow[j] += sxr * swb[j] * static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace odlp::tensor
