#include "tensor/tensor.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace odlp::tensor {

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void detail::note_allocation() {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0f);
}

Tensor Tensor::ones(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 1.0f);
}

Tensor Tensor::from(std::size_t rows, std::size_t cols, std::vector<float> values) {
  if (values.size() != rows * cols) {
    throw std::invalid_argument("Tensor::from: value count does not match shape");
  }
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_.assign(values.begin(), values.end());
  return t;
}

Tensor Tensor::uninitialized(std::size_t rows, std::size_t cols) {
  Tensor t;
  t.resize_uninitialized(rows, cols);
  return t;
}

void Tensor::resize_uninitialized(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // The counting allocator default-initializes (a no-op for float), so this
  // never writes the newly exposed elements.
  data_.resize(rows * cols);
}

float& Tensor::at(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& x : data_) x *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float s) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

std::string Tensor::shape_string() const {
  return util::format("[%zu, %zu]", rows_, cols_);
}

}  // namespace odlp::tensor
