// Workspace: a bump-allocated arena of reusable scratch tensors.
//
// Hot paths (MiniLlm forward/backward, DecodeSession steps) produce dozens of
// short-lived temporaries per step. Instead of hitting the heap for each one,
// a Workspace hands out slots from a pool: `acquire(r, c)` returns a tensor
// reshaped (uninitialized) to the requested shape, and `reset()` rewinds the
// bump index so every slot becomes reusable. Slot storage only ever grows,
// so a warmed workspace serves a whole training step with zero allocations.
//
// Lifetime rules (see DESIGN.md §8):
//  * A reference returned by acquire() is valid until the next reset(); using
//    it across a reset() is aliasing a recycled slot — never do that.
//  * Nothing that must survive the step (module activation caches, returned
//    results) may live in the workspace; copy out first.
//  * A Workspace is single-threaded. Parallel lanes each use their own
//    (models cloned per lane own their own workspace; the thread-local
//    scratch() fallback is per-thread by construction).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace odlp::tensor {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  // Movable so owners (e.g. MiniLlm) stay movable; outstanding acquire()
  // references follow the moved pool (slots are stable unique_ptrs).
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  // Returns a scratch tensor of exactly [rows, cols]; contents unspecified.
  // The reference stays valid until reset() (slots are stable unique_ptrs).
  Tensor& acquire(std::size_t rows, std::size_t cols);

  // Rewinds the bump index: all previously acquired slots become reusable.
  // Does not release storage — capacity is retained for the next step.
  void reset() { next_ = 0; }

  std::size_t slots_in_use() const { return next_; }
  std::size_t pool_slots() const { return pool_.size(); }

  // Thread-local fallback arena for module entry points called without an
  // explicit workspace (standalone tests, gradcheck probes).
  static Workspace& scratch();

  // Workspace to use inside a module call: the caller's if provided,
  // otherwise the thread-local scratch arena, reset for this call. Only the
  // outermost module call (ws == nullptr) resets; nested calls receive a
  // non-null pointer and must not reset.
  static Workspace& enter(Workspace* ws) {
    if (ws) return *ws;
    Workspace& s = scratch();
    s.reset();
    return s;
  }

 private:
  std::vector<std::unique_ptr<Tensor>> pool_;
  std::size_t next_ = 0;
};

}  // namespace odlp::tensor
