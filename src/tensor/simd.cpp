#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace odlp::tensor {

namespace {

SimdLevel probe_host() {
#if defined(__x86_64__) || defined(__i386__)
#ifdef ODLP_HAVE_AVXVNNI
  // kVnni requires the AVX2 kernels too (fp32 + the int8 GEMV path), so both
  // features must be present. Without toolchain support the vnni TU is built
  // empty, so the ladder caps at kAvx2 no matter what cpuid says.
  if (__builtin_cpu_supports("avxvnni") && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kVnni;
  }
#endif
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel clamp_to_host(SimdLevel level) {
  const SimdLevel host = detected_simd_level();
  return static_cast<int>(level) > static_cast<int>(host) ? host : level;
}

SimdLevel initial_level() {
  SimdLevel level = detected_simd_level();
  if (const char* env = std::getenv("ODLP_SIMD")) {
    SimdLevel parsed;
    if (parse_simd_level(env, parsed)) {
      level = clamp_to_host(parsed);
    } else {
      std::fprintf(
          stderr,
          "odlp: ignoring unrecognized ODLP_SIMD=%s "
          "(want scalar|sse2|avx2|vnni)\n",
          env);
    }
  }
  return level;
}

// Function-local static so the env parse happens exactly once, thread-safely,
// on first kernel use. Relaxed order suffices: the level only selects among
// bit-identical kernels, so there is nothing to synchronize with.
std::atomic<int>& active_storage() {
  static std::atomic<int> active{static_cast<int>(initial_level())};
  return active;
}

}  // namespace

SimdLevel detected_simd_level() {
  static const SimdLevel detected = probe_host();
  return detected;
}

SimdLevel active_simd_level() {
  return static_cast<SimdLevel>(
      active_storage().load(std::memory_order_relaxed));
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel applied = clamp_to_host(level);
  active_storage().store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kVnni:
      return "vnni";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

bool parse_simd_level(const char* text, SimdLevel& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    out = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(text, "vnni") == 0) {
    out = SimdLevel::kVnni;
    return true;
  }
  return false;
}

}  // namespace odlp::tensor
