#include "tensor/workspace.h"

namespace odlp::tensor {

Tensor& Workspace::acquire(std::size_t rows, std::size_t cols) {
  if (next_ == pool_.size()) {
    pool_.push_back(std::make_unique<Tensor>());
  }
  Tensor& t = *pool_[next_++];
  // Capacity is monotone per slot, so steady-state reshapes are free.
  t.resize_uninitialized(rows, cols);
  return t;
}

Workspace& Workspace::scratch() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace odlp::tensor
