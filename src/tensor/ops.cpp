// Kernel implementations. This translation unit is compiled with
// -O3 -ffp-contract=off (see src/CMakeLists.txt): -O3 so the micro-kernel's
// fixed-trip inner loops vectorize, -ffp-contract=off so the compiler cannot
// contract a*b+c into FMA — contraction would change results between hosts
// with and without FMA units and break the determinism contract.
#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "obs/trace.h"
#include "tensor/simd.h"
#include "tensor/simd_kernels.h"
#include "util/thread_pool.h"

#ifdef ODLP_INT8
#include "tensor/qtensor.h"  // kQuantBlock, reported in kernel_build_info
#endif

namespace odlp::tensor {

namespace {

// Kernels only fan out to the pool when the arithmetic outweighs the
// dispatch overhead (~µs). Path selection (serial vs parallel, small vs
// tiled) is keyed on shape only — never on the lane count — so a given
// shape always accumulates in the same order.
constexpr std::size_t kMatmulParallelMinFlops = 1u << 17;   // 2·m·k·n
constexpr std::size_t kRowwiseParallelMinElems = 1u << 14;  // rows·cols

// Micro-tile geometry. kMR×kNR is the register accumulator tile: kMR rows of
// C, kNR columns, held in kMR·kNR/4 SSE registers across the k loop. kKC is
// the k-block so the packed A quad (kMR·kKC floats) stays L1-resident.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;
constexpr std::size_t kKC = 256;

// A GEMM operand viewed through an optional transpose: logical element
// [r][c] lives at data[c*ld + r] when trans, data[r*ld + c] otherwise. One
// micro-kernel plus trans-aware packing serves all three products (nn, nt,
// tn) — the transpose happens during packing, never as a materialized copy.
struct Operand {
  const float* data;
  std::size_t ld;
  bool trans;
};

// Pack logical rows [i0, i0+mr) × logical k range [p0, p1) of A into quads:
// ap[(p-p0)*kMR + r]. Rows past mr are zero-padded so the micro-kernel is
// branch-free; padded lanes never reach C.
void pack_a(const Operand& a, std::size_t i0, std::size_t mr, std::size_t p0,
            std::size_t p1, float* __restrict__ ap) {
  if (!a.trans) {
    for (std::size_t r = 0; r < mr; ++r) {
      const float* __restrict__ src = a.data + (i0 + r) * a.ld;
      for (std::size_t p = p0; p < p1; ++p) ap[(p - p0) * kMR + r] = src[p];
    }
  } else {
    for (std::size_t p = p0; p < p1; ++p) {
      const float* __restrict__ src = a.data + p * a.ld + i0;
      float* __restrict__ dst = ap + (p - p0) * kMR;
      for (std::size_t r = 0; r < mr; ++r) dst[r] = src[r];
    }
  }
  for (std::size_t r = mr; r < kMR; ++r) {
    for (std::size_t p = p0; p < p1; ++p) ap[(p - p0) * kMR + r] = 0.0f;
  }
}

// Pack all of logical B (K×N) into kNR-wide panels: panel j0/kNR holds
// bp[panel*K*kNR + p*kNR + j']. Columns past N are zero-padded.
void pack_b(const Operand& b, std::size_t K, std::size_t N,
            float* __restrict__ bp) {
  const std::size_t panels = (N + kNR - 1) / kNR;
  for (std::size_t panel = 0; panel < panels; ++panel) {
    const std::size_t j0 = panel * kNR;
    const std::size_t nr = std::min(kNR, N - j0);
    float* __restrict__ dst_panel = bp + panel * K * kNR;
    if (!b.trans) {
      for (std::size_t p = 0; p < K; ++p) {
        const float* __restrict__ src = b.data + p * b.ld + j0;
        float* __restrict__ dst = dst_panel + p * kNR;
        for (std::size_t j = 0; j < nr; ++j) dst[j] = src[j];
        for (std::size_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        const float* __restrict__ src = b.data + (j0 + j) * b.ld;
        for (std::size_t p = 0; p < K; ++p) dst_panel[p * kNR + j] = src[p];
      }
      if (nr < kNR) {
        for (std::size_t p = 0; p < K; ++p) {
          for (std::size_t j = nr; j < kNR; ++j) dst_panel[p * kNR + j] = 0.0f;
        }
      }
    }
  }
}

// The hot core: acc[kMR][kNR] += A-quad × B-panel over kc steps. Fixed-trip
// inner loops over a flat accumulator array — exactly the shape GCC/Clang
// auto-vectorize into mulps/addps with the accumulators held in registers.
// Branch-free by construction (zero padding replaced the old `if (av == 0)`
// skip), so throughput is independent of sparsity.
inline void micro_kernel(const float* __restrict__ ap,
                         const float* __restrict__ bp, std::size_t kc,
                         float* __restrict__ acc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float a0 = ap[0], a1 = ap[1], a2 = ap[2], a3 = ap[3];
    for (std::size_t j = 0; j < kNR; ++j) {
      const float bv = bp[j];
      acc[0 * kNR + j] += a0 * bv;
      acc[1 * kNR + j] += a1 * bv;
      acc[2 * kNR + j] += a2 * bv;
      acc[3 * kNR + j] += a3 * bv;
    }
    ap += kMR;
    bp += kNR;
  }
}

// C rows [i0, i1) of the tiled product. Per output element the accumulation
// order is strictly ascending k: k-blocks run in order with C loaded/stored
// between them (bit-exact equal to one continuous float accumulation), and
// within a block the micro-kernel walks p upward. Row chunks touch disjoint
// C rows, so any row partition — hence any lane count — yields bit-identical
// results. `use_avx2` swaps in the AVX2 build of the micro-kernel
// (ops_avx2.cpp) — same per-element op sequence, so results do not change;
// it is resolved once per gemm call from the active dispatch level.
void gemm_tiled_rows(const Operand& a, const float* __restrict__ bp,
                     std::size_t K, std::size_t N, float* __restrict__ c,
                     std::size_t ldc, bool accumulate, bool use_avx2,
                     std::size_t i0, std::size_t i1) {
  const std::size_t panels = (N + kNR - 1) / kNR;
  float apack[kMR * kKC];
  float acc[kMR * kNR];
  for (std::size_t p0 = 0; p0 < K; p0 += kKC) {
    const std::size_t p1 = std::min(K, p0 + kKC);
    const bool first = (p0 == 0) && !accumulate;
    for (std::size_t i = i0; i < i1; i += kMR) {
      const std::size_t mr = std::min(kMR, i1 - i);
      pack_a(a, i, mr, p0, p1, apack);
      for (std::size_t panel = 0; panel < panels; ++panel) {
        const std::size_t j0 = panel * kNR;
        const std::size_t nr = std::min(kNR, N - j0);
        if (first) {
          std::fill(acc, acc + kMR * kNR, 0.0f);
        } else {
          std::fill(acc, acc + kMR * kNR, 0.0f);
          for (std::size_t r = 0; r < mr; ++r) {
            const float* crow = c + (i + r) * ldc + j0;
            for (std::size_t j = 0; j < nr; ++j) acc[r * kNR + j] = crow[j];
          }
        }
#ifdef ODLP_SIMD_KERNELS_X86
        if (use_avx2) {
          detail::micro_kernel_avx2(apack, bp + panel * K * kNR + p0 * kNR,
                                    p1 - p0, acc);
        } else
#else
        (void)use_avx2;
#endif
        {
          micro_kernel(apack, bp + panel * K * kNR + p0 * kNR, p1 - p0, acc);
        }
        for (std::size_t r = 0; r < mr; ++r) {
          float* crow = c + (i + r) * ldc + j0;
          for (std::size_t j = 0; j < nr; ++j) crow[j] = acc[r * kNR + j];
        }
      }
    }
  }
}

// Small-shape paths (m < kMR or n < kNR): packing would cost more than it
// saves, so these run unpacked — but still branch-free in the inner loop and
// with the same ascending-k per-element order. Covers m=1 incremental
// decode and the rank-8 LoRA products.
void small_nn(const Operand& a, const Operand& b, std::size_t K, std::size_t N,
              float* __restrict__ c, std::size_t ldc, bool accumulate,
              std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* __restrict__ arow = a.data + i * a.ld;
    float* __restrict__ crow = c + i * ldc;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    for (std::size_t p = 0; p < K; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b.data + p * b.ld;
      for (std::size_t j = 0; j < N; ++j) crow[j] += av * brow[j];
    }
  }
}

void small_nt(const Operand& a, const Operand& b, std::size_t K, std::size_t N,
              float* __restrict__ c, std::size_t ldc, bool accumulate,
              std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* __restrict__ arow = a.data + i * a.ld;
    float* __restrict__ crow = c + i * ldc;
    for (std::size_t j = 0; j < N; ++j) {
      const float* __restrict__ brow = b.data + j * b.ld;
      // Fixed 4-way split dot: order depends only on K, never on lanes.
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::size_t p = 0;
      for (; p + 4 <= K; p += 4) {
        s0 += arow[p] * brow[p];
        s1 += arow[p + 1] * brow[p + 1];
        s2 += arow[p + 2] * brow[p + 2];
        s3 += arow[p + 3] * brow[p + 3];
      }
      float s = (s0 + s1) + (s2 + s3);
      for (; p < K; ++p) s += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + s : s;
    }
  }
}

void small_tn(const Operand& a, const Operand& b, std::size_t K, std::size_t N,
              float* __restrict__ c, std::size_t ldc, bool accumulate,
              std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* __restrict__ crow = c + i * ldc;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    for (std::size_t p = 0; p < K; ++p) {
      const float av = a.data[p * a.ld + i];
      const float* __restrict__ brow = b.data + p * b.ld;
      for (std::size_t j = 0; j < N; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_small_rows(const Operand& a, const Operand& b, std::size_t K,
                     std::size_t N, float* c, std::size_t ldc, bool accumulate,
                     std::size_t i0, std::size_t i1) {
  assert(!(a.trans && b.trans));  // tt never occurs
  if (a.trans) {
    small_tn(a, b, K, N, c, ldc, accumulate, i0, i1);
  } else if (b.trans) {
    small_nt(a, b, K, N, c, ldc, accumulate, i0, i1);
  } else {
    small_nn(a, b, K, N, c, ldc, accumulate, i0, i1);
  }
}

// Rows per matmul chunk sized so one chunk is a meaningful slice of work.
std::size_t matmul_row_grain(std::size_t m, std::size_t k, std::size_t n,
                             std::size_t lanes) {
  const std::size_t flops_per_row = 2 * k * n;
  std::size_t grain = flops_per_row == 0
                          ? m
                          : std::max<std::size_t>(1, (1u << 15) / flops_per_row);
  // No more than ~4 chunks per lane of slack, no fewer than one row.
  const std::size_t min_grain = (m + lanes * 4 - 1) / (lanes * 4);
  return std::max(grain, std::max<std::size_t>(1, min_grain));
}

// Shared driver for all three products. B is packed once by the calling
// thread into a thread-local buffer (read-only for the row workers); rows
// fan out to the pool above the flops threshold.
void gemm(const Operand& a, const Operand& b, std::size_t M, std::size_t K,
          std::size_t N, Tensor& out, bool accumulate) {
  if (!accumulate) {
    out.resize_uninitialized(M, N);
  }
  assert(out.rows() == M && out.cols() == N);
  assert(out.data() != a.data && out.data() != b.data);
  float* c = out.data();
  const std::size_t ldc = N;
  if (M == 0 || N == 0) return;
  if (K == 0) {
    if (!accumulate) out.zero();
    return;
  }
  // Path choice is a function of shape only (determinism: a given shape
  // always takes the same path, whatever the lane count). The SIMD level is
  // read once here, on the calling thread, and passed down by value so pool
  // workers never touch the dispatch atomic and a concurrent
  // set_simd_level() cannot split one product across kernel variants (they
  // are bit-identical anyway — this just keeps the hot loop load-free).
  const bool tiled = M >= kMR && N >= kNR;
  const bool use_avx2 = active_simd_level() >= SimdLevel::kAvx2;
  const float* bp = nullptr;
  if (tiled) {
    thread_local std::vector<float> pack_buffer;
    const std::size_t need = ((N + kNR - 1) / kNR) * kNR * K;
    if (pack_buffer.size() < need) pack_buffer.resize(need);
    pack_b(b, K, N, pack_buffer.data());
    bp = pack_buffer.data();
  }
  auto run = [&, use_avx2](std::size_t i0, std::size_t i1) {
    if (tiled) {
      gemm_tiled_rows(a, bp, K, N, c, ldc, accumulate, use_avx2, i0, i1);
    } else {
      gemm_small_rows(a, b, K, N, c, ldc, accumulate, i0, i1);
    }
  };
  const std::size_t flops = 2 * M * K * N;
  if (flops < kMatmulParallelMinFlops) {
    run(0, M);
    return;
  }
  util::ThreadPool& pool = util::ThreadPool::global();
  std::size_t grain = matmul_row_grain(M, K, N, pool.lanes());
  // Quad-align chunks so only the final one packs a partial A quad.
  grain = (grain + kMR - 1) / kMR * kMR;
  pool.parallel_for(0, M, grain, run);
}

}  // namespace

KernelBuildInfo kernel_build_info() {
  static_assert(kMR == 4 && kNR == 8,
                "update the variant string alongside the tile constants");
  const SimdLevel level = active_simd_level();
  KernelBuildInfo info;
  info.variant = level >= SimdLevel::kAvx2 ? "tiled-4x8-packed-avx2"
                                           : "tiled-4x8-packed";
  info.simd_level = simd_level_name(level);
#ifdef ODLP_NATIVE_ARCH
  info.native_arch = true;
#else
  info.native_arch = false;
#endif
#ifdef ODLP_INT8
  if (level >= SimdLevel::kVnni) {
    info.int8_variant = "q8-4x16-dpbusd-vnni";
  } else if (level >= SimdLevel::kAvx2) {
    info.int8_variant = "q8-4x16-maddubs-avx2";
  } else {
#ifdef __SSE2__
    info.int8_variant = level >= SimdLevel::kSse2 ? "q8-4x16-madd-sse2"
                                                  : "q8-4x16-scalar";
#else
    info.int8_variant = "q8-4x16-scalar";
#endif
  }
  info.int8_block = kQuantBlock;
#else
  info.int8_variant = "disabled";
  info.int8_block = 0;
#endif
  return info;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate) {
  ODLP_TRACE_SCOPE("tensor.gemm");
  assert(a.cols() == b.rows());
  gemm(Operand{a.data(), a.cols(), false}, Operand{b.data(), b.cols(), false},
       a.rows(), a.cols(), b.cols(), out, accumulate);
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out,
                    bool accumulate) {
  ODLP_TRACE_SCOPE("tensor.gemm");
  assert(a.cols() == b.cols());
  gemm(Operand{a.data(), a.cols(), false}, Operand{b.data(), b.cols(), true},
       a.rows(), a.cols(), b.rows(), out, accumulate);
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out,
                    bool accumulate) {
  ODLP_TRACE_SCOPE("tensor.gemm");
  assert(a.rows() == b.rows());
  gemm(Operand{a.data(), a.cols(), true}, Operand{b.data(), b.cols(), false},
       a.cols(), a.rows(), b.cols(), out, accumulate);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void matmul_backward(const Tensor& a, const Tensor& b, const Tensor& dc,
                     Tensor& da, Tensor& db) {
  assert(dc.rows() == a.rows() && dc.cols() == b.cols());
  assert(da.same_shape(a) && db.same_shape(b));
  matmul_nt_into(dc, b, da, /*accumulate=*/true);  // dA += dC · Bᵀ
  matmul_tn_into(a, dc, db, /*accumulate=*/true);  // dB += Aᵀ · dC
}

void matmul_backward_reference(const Tensor& a, const Tensor& b,
                               const Tensor& dc, Tensor& da, Tensor& db) {
  assert(dc.rows() == a.rows() && dc.cols() == b.cols());
  assert(da.same_shape(a) && db.same_shape(b));
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // dA += dC * B^T
  for (std::size_t i = 0; i < m; ++i) {
    const float* dcrow = dc.row(i);
    float* darow = da.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += static_cast<double>(dcrow[j]) * brow[j];
      darow[p] += static_cast<float>(acc);
    }
  }
  // dB += A^T * dC
  for (std::size_t p = 0; p < k; ++p) {
    float* dbrow = db.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a.at(i, p);
      if (av == 0.0f) continue;
      const float* dcrow = dc.row(i);
      for (std::size_t j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
    }
  }
}

Tensor transpose(const Tensor& a) {
  Tensor t = Tensor::uninitialized(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

void add_row_broadcast_inplace(Tensor& inout, const Tensor& bias) {
  assert(bias.rows() == 1 && bias.cols() == inout.cols());
  auto apply = [&](std::size_t i0, std::size_t i1) {
    const float* b = bias.row(0);
    for (std::size_t i = i0; i < i1; ++i) {
      float* row = inout.row(i);
      for (std::size_t j = 0; j < inout.cols(); ++j) row[j] += b[j];
    }
  };
  if (inout.size() < kRowwiseParallelMinElems) {
    apply(0, inout.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, inout.rows(), 0, apply);
  }
}

Tensor add_row_broadcast(const Tensor& in, const Tensor& bias) {
  Tensor out = in;
  add_row_broadcast_inplace(out, bias);
  return out;
}

void add_row_broadcast_backward(const Tensor& dout, Tensor& dbias) {
  assert(dbias.rows() == 1 && dbias.cols() == dout.cols());
  float* db = dbias.row(0);
  if (dout.size() < kRowwiseParallelMinElems) {
    for (std::size_t i = 0; i < dout.rows(); ++i) {
      const float* row = dout.row(i);
      for (std::size_t j = 0; j < dout.cols(); ++j) db[j] += row[j];
    }
    return;
  }
  // Shared accumulator: reduce fixed-grain chunk partials in chunk order so
  // the result is independent of the lane count.
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::vector<float> partial = pool.reduce_ordered<std::vector<float>>(
      0, dout.rows(), /*grain=*/0, std::vector<float>(),
      [&](std::size_t i0, std::size_t i1) {
        std::vector<float> acc(dout.cols(), 0.0f);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* row = dout.row(i);
          for (std::size_t j = 0; j < dout.cols(); ++j) acc[j] += row[j];
        }
        return acc;
      },
      [](const std::vector<float>& a, const std::vector<float>& b) {
        if (a.empty()) return b;
        if (b.empty()) return a;
        std::vector<float> out = a;
        for (std::size_t j = 0; j < out.size(); ++j) out[j] += b[j];
        return out;
      });
  for (std::size_t j = 0; j < dout.cols(); ++j) db[j] += partial[j];
}

void softmax_rows_into(const Tensor& logits, Tensor& out) {
  out.resize_uninitialized(logits.rows(), logits.cols());
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* in = logits.row(i);
      float* o = out.row(i);
      float mx = in[0];
      for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, in[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < logits.cols(); ++j) {
        o[j] = std::exp(in[j] - mx);
        sum += o[j];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (std::size_t j = 0; j < logits.cols(); ++j) o[j] *= inv;
    }
  };
  if (logits.size() < kRowwiseParallelMinElems) {
    apply(0, logits.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, logits.rows(), 0, apply);
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out;
  softmax_rows_into(logits, out);
  return out;
}

void softmax_rows_backward_into(const Tensor& softmax_out, const Tensor& dout,
                                Tensor& din) {
  assert(softmax_out.same_shape(dout));
  din.resize_uninitialized(softmax_out.rows(), softmax_out.cols());
  for (std::size_t i = 0; i < softmax_out.rows(); ++i) {
    const float* s = softmax_out.row(i);
    const float* d = dout.row(i);
    float* o = din.row(i);
    double dot = 0.0;
    for (std::size_t j = 0; j < softmax_out.cols(); ++j) dot += static_cast<double>(d[j]) * s[j];
    for (std::size_t j = 0; j < softmax_out.cols(); ++j) {
      o[j] = s[j] * (d[j] - static_cast<float>(dot));
    }
  }
}

Tensor softmax_rows_backward(const Tensor& softmax_out, const Tensor& dout) {
  Tensor din;
  softmax_rows_backward_into(softmax_out, dout, din);
  return din;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

void gelu_into(const Tensor& in, Tensor& out) {
  out.resize_uninitialized(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float x = in.data()[i];
    const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    out.data()[i] = 0.5f * x * (1.0f + t);
  }
}

Tensor gelu(const Tensor& in) {
  Tensor out;
  gelu_into(in, out);
  return out;
}

void gelu_backward_into(const Tensor& in, const Tensor& dout, Tensor& din) {
  assert(in.same_shape(dout));
  din.resize_uninitialized(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float x = in.data()[i];
    const float u = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    const float grad = 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
    din.data()[i] = dout.data()[i] * grad;
  }
}

Tensor gelu_backward(const Tensor& in, const Tensor& dout) {
  Tensor din;
  gelu_backward_into(in, dout, din);
  return din;
}

Tensor relu(const Tensor& in) {
  Tensor out = Tensor::uninitialized(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.data()[i] = in.data()[i] > 0.0f ? in.data()[i] : 0.0f;
  }
  return out;
}

Tensor relu_backward(const Tensor& in, const Tensor& dout) {
  assert(in.same_shape(dout));
  Tensor din = Tensor::uninitialized(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    din.data()[i] = in.data()[i] > 0.0f ? dout.data()[i] : 0.0f;
  }
  return din;
}

void layernorm_rows_into(const Tensor& in, float eps, LayerNormCache* cache,
                         Tensor& out) {
  out.resize_uninitialized(in.rows(), in.cols());
  if (cache) {
    // resize_uninitialized keeps the cache's storage across steps instead of
    // reallocating a zero-filled tensor each forward.
    cache->normalized.resize_uninitialized(in.rows(), in.cols());
    cache->inv_std.resize(in.rows());
  }
  const std::size_t n = in.cols();
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* x = in.row(i);
      double mean = 0.0;
      for (std::size_t j = 0; j < n; ++j) mean += x[j];
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double d = x[j] - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
      float* o = out.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        o[j] = (x[j] - static_cast<float>(mean)) * inv_std;
      }
      if (cache) {
        std::memcpy(cache->normalized.row(i), o, n * sizeof(float));
        cache->inv_std[i] = inv_std;
      }
    }
  };
  if (in.size() < kRowwiseParallelMinElems) {
    apply(0, in.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, in.rows(), 0, apply);
  }
}

Tensor layernorm_rows(const Tensor& in, float eps, LayerNormCache* cache) {
  Tensor out;
  layernorm_rows_into(in, eps, cache, out);
  return out;
}

void layernorm_rows_backward_into(const Tensor& dout,
                                  const LayerNormCache& cache, Tensor& din) {
  assert(dout.same_shape(cache.normalized));
  const std::size_t n = dout.cols();
  din.resize_uninitialized(dout.rows(), dout.cols());
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* d = dout.row(i);
      const float* xn = cache.normalized.row(i);
      const float inv_std = cache.inv_std[i];
      double sum_d = 0.0, sum_dxn = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sum_d += d[j];
        sum_dxn += static_cast<double>(d[j]) * xn[j];
      }
      const float mean_d = static_cast<float>(sum_d / n);
      const float mean_dxn = static_cast<float>(sum_dxn / n);
      float* o = din.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        o[j] = inv_std * (d[j] - mean_d - xn[j] * mean_dxn);
      }
    }
  };
  if (dout.size() < kRowwiseParallelMinElems) {
    apply(0, dout.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, dout.rows(), 0, apply);
  }
}

Tensor layernorm_rows_backward(const Tensor& dout, const LayerNormCache& cache) {
  Tensor din;
  layernorm_rows_backward_into(dout, cache, din);
  return din;
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  assert(a.same_shape(b));
  out.resize_uninitialized(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out;
  add_into(a, b, out);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul_elem(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out = Tensor::uninitialized(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

void scale_into(const Tensor& a, float s, Tensor& out) {
  out.resize_uninitialized(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * s;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out;
  scale_into(a, s, out);
  return out;
}

Tensor mean_rows(const Tensor& in) {
  Tensor out(1, in.cols(), 0.0f);
  if (in.rows() == 0) return out;
  for (std::size_t i = 0; i < in.rows(); ++i) {
    const float* row = in.row(i);
    for (std::size_t j = 0; j < in.cols(); ++j) out.at(0, j) += row[j];
  }
  const float inv = 1.0f / static_cast<float>(in.rows());
  for (std::size_t j = 0; j < in.cols(); ++j) out.at(0, j) *= inv;
  return out;
}

float cosine_similarity(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

double sum_squares(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return acc;
}

double dot(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return acc;
}

}  // namespace odlp::tensor
