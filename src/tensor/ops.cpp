#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace odlp::tensor {

namespace {

// Kernels only fan out to the pool when the arithmetic outweighs the
// dispatch overhead (~µs). Below these thresholds the serial path runs and
// results are byte-identical to the pre-parallel implementation.
constexpr std::size_t kMatmulParallelMinFlops = 1u << 17;   // 2·m·k·n
constexpr std::size_t kRowwiseParallelMinElems = 1u << 14;  // rows·cols

// Panel of k processed per pass so the touched rows of B stay cache-hot
// while a row chunk of A sweeps them.
constexpr std::size_t kMatmulKBlock = 64;

// Rows per matmul chunk sized so one chunk is a meaningful slice of work.
std::size_t matmul_row_grain(std::size_t m, std::size_t k, std::size_t n,
                             std::size_t lanes) {
  const std::size_t flops_per_row = 2 * k * n;
  std::size_t grain = flops_per_row == 0
                          ? m
                          : std::max<std::size_t>(1, (1u << 15) / flops_per_row);
  // No more than ~4 chunks per lane of slack, no fewer than one row.
  const std::size_t min_grain = (m + lanes * 4 - 1) / (lanes * 4);
  return std::max(grain, std::max<std::size_t>(1, min_grain));
}

// C rows [i0, i1) += A rows × B, k-blocked. Accumulation over k is
// strictly ascending per output element, matching the reference kernel.
void matmul_panel(const Tensor& a, const Tensor& b, Tensor& c, std::size_t i0,
                  std::size_t i1) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t kb = 0; kb < k; kb += kMatmulKBlock) {
    const std::size_t ke = std::min(k, kb + kMatmulKBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (std::size_t p = kb; p < ke; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b.row(p);
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n, 0.0f);
  const std::size_t flops = 2 * m * k * n;
  if (flops < kMatmulParallelMinFlops) {
    matmul_panel(a, b, c, 0, m);
    return c;
  }
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.parallel_for(0, m, matmul_row_grain(m, k, n, pool.lanes()),
                    [&](std::size_t i0, std::size_t i1) {
                      matmul_panel(a, b, c, i0, i1);
                    });
  return c;
}

void matmul_backward_reference(const Tensor& a, const Tensor& b,
                               const Tensor& dc, Tensor& da, Tensor& db) {
  assert(dc.rows() == a.rows() && dc.cols() == b.cols());
  assert(da.same_shape(a) && db.same_shape(b));
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // dA += dC * B^T
  for (std::size_t i = 0; i < m; ++i) {
    const float* dcrow = dc.row(i);
    float* darow = da.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += static_cast<double>(dcrow[j]) * brow[j];
      darow[p] += static_cast<float>(acc);
    }
  }
  // dB += A^T * dC
  for (std::size_t p = 0; p < k; ++p) {
    float* dbrow = db.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a.at(i, p);
      if (av == 0.0f) continue;
      const float* dcrow = dc.row(i);
      for (std::size_t j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
    }
  }
}

void matmul_backward(const Tensor& a, const Tensor& b, const Tensor& dc,
                     Tensor& da, Tensor& db) {
  assert(dc.rows() == a.rows() && dc.cols() == b.cols());
  assert(da.same_shape(a) && db.same_shape(b));
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t flops = 2 * m * k * n;
  if (flops < kMatmulParallelMinFlops) {
    matmul_backward_reference(a, b, dc, da, db);
    return;
  }
  util::ThreadPool& pool = util::ThreadPool::global();
  // dA += dC * B^T — rows of dA are disjoint across chunks.
  pool.parallel_for(
      0, m, matmul_row_grain(m, n, k, pool.lanes()),
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* dcrow = dc.row(i);
          float* darow = da.row(i);
          for (std::size_t p = 0; p < k; ++p) {
            const float* brow = b.row(p);
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
              acc += static_cast<double>(dcrow[j]) * brow[j];
            }
            darow[p] += static_cast<float>(acc);
          }
        }
      });
  // dB += A^T * dC — rows of dB are disjoint across chunks; the inner i
  // accumulation stays ascending, matching the reference kernel exactly.
  pool.parallel_for(
      0, k, matmul_row_grain(k, m, n, pool.lanes()),
      [&](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
          float* dbrow = db.row(p);
          for (std::size_t i = 0; i < m; ++i) {
            const float av = a.at(i, p);
            if (av == 0.0f) continue;
            const float* dcrow = dc.row(i);
            for (std::size_t j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
          }
        }
      });
}

Tensor transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor add_row_broadcast(const Tensor& in, const Tensor& bias) {
  assert(bias.rows() == 1 && bias.cols() == in.cols());
  Tensor out = in;
  auto apply = [&](std::size_t i0, std::size_t i1) {
    const float* b = bias.row(0);
    for (std::size_t i = i0; i < i1; ++i) {
      float* row = out.row(i);
      for (std::size_t j = 0; j < out.cols(); ++j) row[j] += b[j];
    }
  };
  if (out.size() < kRowwiseParallelMinElems) {
    apply(0, out.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, out.rows(), 0, apply);
  }
  return out;
}

void add_row_broadcast_backward(const Tensor& dout, Tensor& dbias) {
  assert(dbias.rows() == 1 && dbias.cols() == dout.cols());
  float* db = dbias.row(0);
  if (dout.size() < kRowwiseParallelMinElems) {
    for (std::size_t i = 0; i < dout.rows(); ++i) {
      const float* row = dout.row(i);
      for (std::size_t j = 0; j < dout.cols(); ++j) db[j] += row[j];
    }
    return;
  }
  // Shared accumulator: reduce fixed-grain chunk partials in chunk order so
  // the result is independent of the lane count.
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::vector<float> partial = pool.reduce_ordered<std::vector<float>>(
      0, dout.rows(), /*grain=*/0, std::vector<float>(),
      [&](std::size_t i0, std::size_t i1) {
        std::vector<float> acc(dout.cols(), 0.0f);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* row = dout.row(i);
          for (std::size_t j = 0; j < dout.cols(); ++j) acc[j] += row[j];
        }
        return acc;
      },
      [](const std::vector<float>& a, const std::vector<float>& b) {
        if (a.empty()) return b;
        if (b.empty()) return a;
        std::vector<float> out = a;
        for (std::size_t j = 0; j < out.size(); ++j) out[j] += b[j];
        return out;
      });
  for (std::size_t j = 0; j < dout.cols(); ++j) db[j] += partial[j];
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* in = logits.row(i);
      float* o = out.row(i);
      float mx = in[0];
      for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, in[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < logits.cols(); ++j) {
        o[j] = std::exp(in[j] - mx);
        sum += o[j];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (std::size_t j = 0; j < logits.cols(); ++j) o[j] *= inv;
    }
  };
  if (logits.size() < kRowwiseParallelMinElems) {
    apply(0, logits.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, logits.rows(), 0, apply);
  }
  return out;
}

Tensor softmax_rows_backward(const Tensor& softmax_out, const Tensor& dout) {
  assert(softmax_out.same_shape(dout));
  Tensor din(softmax_out.rows(), softmax_out.cols());
  for (std::size_t i = 0; i < softmax_out.rows(); ++i) {
    const float* s = softmax_out.row(i);
    const float* d = dout.row(i);
    float* o = din.row(i);
    double dot = 0.0;
    for (std::size_t j = 0; j < softmax_out.cols(); ++j) dot += static_cast<double>(d[j]) * s[j];
    for (std::size_t j = 0; j < softmax_out.cols(); ++j) {
      o[j] = s[j] * (d[j] - static_cast<float>(dot));
    }
  }
  return din;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor gelu(const Tensor& in) {
  Tensor out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float x = in.data()[i];
    const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    out.data()[i] = 0.5f * x * (1.0f + t);
  }
  return out;
}

Tensor gelu_backward(const Tensor& in, const Tensor& dout) {
  assert(in.same_shape(dout));
  Tensor din(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float x = in.data()[i];
    const float u = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    const float grad = 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
    din.data()[i] = dout.data()[i] * grad;
  }
  return din;
}

Tensor relu(const Tensor& in) {
  Tensor out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.data()[i] = in.data()[i] > 0.0f ? in.data()[i] : 0.0f;
  }
  return out;
}

Tensor relu_backward(const Tensor& in, const Tensor& dout) {
  assert(in.same_shape(dout));
  Tensor din(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    din.data()[i] = in.data()[i] > 0.0f ? dout.data()[i] : 0.0f;
  }
  return din;
}

Tensor layernorm_rows(const Tensor& in, float eps, LayerNormCache* cache) {
  Tensor out(in.rows(), in.cols());
  if (cache) {
    cache->normalized = Tensor(in.rows(), in.cols());
    cache->inv_std.assign(in.rows(), 0.0f);
  }
  const std::size_t n = in.cols();
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* x = in.row(i);
      double mean = 0.0;
      for (std::size_t j = 0; j < n; ++j) mean += x[j];
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double d = x[j] - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
      float* o = out.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        o[j] = (x[j] - static_cast<float>(mean)) * inv_std;
      }
      if (cache) {
        for (std::size_t j = 0; j < n; ++j) cache->normalized.at(i, j) = o[j];
        cache->inv_std[i] = inv_std;
      }
    }
  };
  if (in.size() < kRowwiseParallelMinElems) {
    apply(0, in.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, in.rows(), 0, apply);
  }
  return out;
}

Tensor layernorm_rows_backward(const Tensor& dout, const LayerNormCache& cache) {
  assert(dout.same_shape(cache.normalized));
  const std::size_t n = dout.cols();
  Tensor din(dout.rows(), dout.cols());
  auto apply = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* d = dout.row(i);
      const float* xn = cache.normalized.row(i);
      const float inv_std = cache.inv_std[i];
      double sum_d = 0.0, sum_dxn = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sum_d += d[j];
        sum_dxn += static_cast<double>(d[j]) * xn[j];
      }
      const float mean_d = static_cast<float>(sum_d / n);
      const float mean_dxn = static_cast<float>(sum_dxn / n);
      float* o = din.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        o[j] = inv_std * (d[j] - mean_d - xn[j] * mean_dxn);
      }
    }
  };
  if (dout.size() < kRowwiseParallelMinElems) {
    apply(0, dout.rows());
  } else {
    util::ThreadPool::global().parallel_for(0, dout.rows(), 0, apply);
  }
  return din;
}

Tensor add(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul_elem(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor mean_rows(const Tensor& in) {
  Tensor out(1, in.cols(), 0.0f);
  if (in.rows() == 0) return out;
  for (std::size_t i = 0; i < in.rows(); ++i) {
    const float* row = in.row(i);
    for (std::size_t j = 0; j < in.cols(); ++j) out.at(0, j) += row[j];
  }
  const float inv = 1.0f / static_cast<float>(in.rows());
  for (std::size_t j = 0; j < in.cols(); ++j) out.at(0, j) *= inv;
  return out;
}

float cosine_similarity(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

double sum_squares(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return acc;
}

double dot(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return acc;
}

}  // namespace odlp::tensor
