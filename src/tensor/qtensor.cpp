// Quantize / dequantize / error accounting for per-block int8 tensors.
// Cold path: runs once per weight freeze (nn::Linear::quantize_frozen), so
// the loops here stay simple; the hot int8 GEMM lives in qops.cpp.
#include "tensor/qtensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace odlp::tensor {

namespace {

// 1/scale with the denormal guard: when amax is so small that the scale
// (amax/127) is denormal, 1/scale can overflow to +inf and lround(x * inf)
// would be UB. Such blocks degrade to all-zero codes (the values they carry
// are below any representable quantized magnitude anyway).
float safe_inv_scale(float scale) {
  if (scale <= 0.0f) return 0.0f;
  const float inv = 1.0f / scale;
  return std::isfinite(inv) ? inv : 0.0f;
}

// amax/127 with the overflow guard at the other extreme: near FLT_MAX the
// quotient can round up far enough that reconstructing the extreme code
// (127 * scale) overflows to +inf. Nudge the scale down until the largest
// reconstruction is finite again (at most a couple of ulps; the extra
// round-trip error is below one code step).
float block_scale(float amax) {
  float scale = amax / 127.0f;
  while (scale > 0.0f && !std::isfinite(scale * 127.0f)) {
    scale = std::nextafterf(scale, 0.0f);
  }
  return scale;
}

std::int8_t encode(float v, float inv_scale) {
  const long q = std::lround(v * inv_scale);
  return static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
}

}  // namespace

QuantizedTensor QuantizedTensor::quantize(const Tensor& src, QuantAxis axis) {
  QuantizedTensor q;
  q.rows_ = src.rows();
  q.cols_ = src.cols();
  q.axis_ = axis;
  const std::size_t extent =
      axis == QuantAxis::kAlongRows ? src.rows() : src.cols();
  q.blocks_ = (extent + kQuantBlock - 1) / kQuantBlock;
  q.values_.resize(src.size());
  if (src.empty()) {
    q.blocks_ = 0;
    return q;
  }
  if (axis == QuantAxis::kAlongRows) {
    // Blocks run down each column: scale index [kb * cols + j]. Walk each
    // block row-major (amax pass, then encode pass) so the source streams.
    q.scales_.assign(q.blocks_ * q.cols_, 0.0f);
    std::vector<float> amax(q.cols_);
    std::vector<float> inv(q.cols_);
    for (std::size_t kb = 0; kb < q.blocks_; ++kb) {
      const std::size_t p0 = kb * kQuantBlock;
      const std::size_t p1 = std::min(q.rows_, p0 + kQuantBlock);
      std::fill(amax.begin(), amax.end(), 0.0f);
      for (std::size_t p = p0; p < p1; ++p) {
        const float* srow = src.row(p);
        for (std::size_t j = 0; j < q.cols_; ++j) {
          amax[j] = std::max(amax[j], std::fabs(srow[j]));
        }
      }
      float* sblk = q.scales_.data() + kb * q.cols_;
      for (std::size_t j = 0; j < q.cols_; ++j) {
        sblk[j] = block_scale(amax[j]);
        inv[j] = safe_inv_scale(sblk[j]);
      }
      for (std::size_t p = p0; p < p1; ++p) {
        const float* srow = src.row(p);
        std::int8_t* qrow = q.values_.data() + p * q.cols_;
        for (std::size_t j = 0; j < q.cols_; ++j) {
          qrow[j] = encode(srow[j], inv[j]);
        }
      }
    }
  } else {
    // Blocks run along each row: scale index [r * blocks + b]; codes and
    // scales of one row are contiguous (single-row dequantize streams).
    q.scales_.assign(q.rows_ * q.blocks_, 0.0f);
    for (std::size_t r = 0; r < q.rows_; ++r) {
      const float* srow = src.row(r);
      std::int8_t* qrow = q.values_.data() + r * q.cols_;
      float* srow_scales = q.scales_.data() + r * q.blocks_;
      for (std::size_t b = 0; b < q.blocks_; ++b) {
        const std::size_t c0 = b * kQuantBlock;
        const std::size_t c1 = std::min(q.cols_, c0 + kQuantBlock);
        float amax = 0.0f;
        for (std::size_t c = c0; c < c1; ++c) {
          amax = std::max(amax, std::fabs(srow[c]));
        }
        const float scale = block_scale(amax);
        srow_scales[b] = scale;
        const float inv = safe_inv_scale(scale);
        for (std::size_t c = c0; c < c1; ++c) qrow[c] = encode(srow[c], inv);
      }
    }
  }
  return q;
}

Tensor QuantizedTensor::dequantize() const {
  Tensor out = Tensor::uninitialized(rows_, cols_);
  if (empty()) return out;
  if (axis_ == QuantAxis::kAlongRows) {
    for (std::size_t p = 0; p < rows_; ++p) {
      const float* sblk = scales_.data() + (p / kQuantBlock) * cols_;
      const std::int8_t* qrow = values_.data() + p * cols_;
      float* orow = out.row(p);
      for (std::size_t j = 0; j < cols_; ++j) {
        orow[j] = static_cast<float>(qrow[j]) * sblk[j];
      }
    }
  } else {
    for (std::size_t r = 0; r < rows_; ++r) {
      dequantize_row_into(r, out.row(r), /*accumulate=*/false);
    }
  }
  return out;
}

void QuantizedTensor::dequantize_row_into(std::size_t r, float* dst,
                                          bool accumulate) const {
  assert(axis_ == QuantAxis::kAlongCols);
  assert(r < rows_);
  const std::int8_t* qrow = values_.data() + r * cols_;
  const float* srow = scales_.data() + r * blocks_;
  for (std::size_t b = 0; b < blocks_; ++b) {
    const std::size_t c0 = b * kQuantBlock;
    const std::size_t c1 = std::min(cols_, c0 + kQuantBlock);
    const float scale = srow[b];
    if (accumulate) {
      for (std::size_t c = c0; c < c1; ++c) {
        dst[c] += static_cast<float>(qrow[c]) * scale;
      }
    } else {
      for (std::size_t c = c0; c < c1; ++c) {
        dst[c] = static_cast<float>(qrow[c]) * scale;
      }
    }
  }
}

QuantStats QuantizedTensor::round_trip_stats(const Tensor& src) const {
  assert(src.rows() == rows_ && src.cols() == cols_);
  QuantStats stats;
  stats.elements = src.size();
  if (src.empty()) return stats;
  double sum_abs = 0.0, sum_sq = 0.0;
  const Tensor dq = dequantize();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const double err = static_cast<double>(src.data()[i]) - dq.data()[i];
    const double abs_err = std::fabs(err);
    stats.max_abs_err = std::max(stats.max_abs_err,
                                 static_cast<float>(abs_err));
    sum_abs += abs_err;
    sum_sq += err * err;
  }
  stats.mean_abs_err = sum_abs / static_cast<double>(src.size());
  stats.rms_err = std::sqrt(sum_sq / static_cast<double>(src.size()));
  for (float s : scales_) stats.max_scale = std::max(stats.max_scale, s);
  return stats;
}

}  // namespace odlp::tensor
