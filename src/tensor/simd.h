// Runtime SIMD dispatch for the GEMM hot cores (DESIGN.md §12).
//
// The kernel TUs (ops.cpp / qops.cpp) select among per-ISA kernel variants at
// call time instead of committing to one instruction set at build time:
//
//   kScalar — portable C++ loops (the compiler may still auto-vectorize them
//             to the build baseline, but no hand-written intrinsics run)
//   kSse2   — SSE2 pmaddwd int8 kernels (the PR-4 baseline)
//   kAvx2   — AVX2 vpmaddubsw+vpmaddwd int8 kernels and the AVX2 fp32
//             micro-kernel (compiled in their own -mavx2 TUs)
//   kVnni   — AVX-VNNI vpdpbusd int8 tiled kernel (-mavxvnni TU); fp32 and
//             the m<4 int8 GEMV path reuse the AVX2 kernels, so this level
//             only exists when the toolchain can emit AVX-VNNI
//             (ODLP_HAVE_AVXVNNI) and the host reports the feature
//
// The active level starts at min(detected host capability, ODLP_SIMD env
// override) and can be forced lower at runtime via set_simd_level() — the
// dispatch-matrix tests sweep every level available on the host. Every
// variant of a kernel is bit-identical to every other (fp32: same
// per-element accumulation order; int8: exact integer block sums plus the
// shared fp32 fixup), so the level changes throughput, never results; the
// `*_reference` kernels remain the oracle either way.
#pragma once

namespace odlp::tensor {

// Ordered capability ladder: a level implies every level below it.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kVnni = 3,
};

// Highest level the host CPU supports (cpuid probe, cached after first call).
// Non-x86 builds always report kScalar.
SimdLevel detected_simd_level();

// Level the kernel TUs currently dispatch on. Initialized once to
// min(detected_simd_level(), ODLP_SIMD) — ODLP_SIMD=scalar|sse2|avx2|vnni;
// unparseable values are ignored with a stderr warning, and requests above
// the host capability are clamped down, never honored.
SimdLevel active_simd_level();

// Forces the active level (test hook for the dispatch-matrix sweep). Clamped
// to detected_simd_level(); returns the level actually applied.
SimdLevel set_simd_level(SimdLevel level);

// "scalar" | "sse2" | "avx2" | "vnni".
const char* simd_level_name(SimdLevel level);

// Parses an ODLP_SIMD-style spelling. Returns false (out untouched) on
// anything other than exactly "scalar", "sse2", "avx2", or "vnni".
bool parse_simd_level(const char* text, SimdLevel& out);

}  // namespace odlp::tensor
