// Finite-difference gradient checking used by the test suite to validate
// every hand-written backward kernel and module backward pass.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace odlp::tensor {

struct GradCheckResult {
  float max_abs_error = 0.0f;  // max |analytic - numeric|
  // max |analytic - numeric| / max(0.1, |analytic| + |numeric|)
  float max_rel_error = 0.0f;
  std::size_t checked = 0;  // number of coordinates probed
};

// Compares `analytic_grad` (dLoss/dParam) against central finite differences
// of `loss_fn`, which must recompute the scalar loss from the *current*
// contents of `param` each call. Probes at most `max_probes` coordinates
// (deterministic stride over the parameter) to keep tests fast.
GradCheckResult check_gradient(Tensor& param, const Tensor& analytic_grad,
                               const std::function<double()>& loss_fn,
                               float epsilon = 1e-3f,
                               std::size_t max_probes = 64);

}  // namespace odlp::tensor
