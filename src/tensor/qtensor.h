// Symmetric per-block INT8 quantization of fp32 matrices.
//
// A QuantizedTensor stores the int8 codes row-major (same [rows, cols]
// layout as the source Tensor) plus one fp32 scale per block of
// kQuantBlock consecutive elements along the blocking axis:
//
//  * kAlongRows — blocks run down each column (along k of a GEMM weight
//    [k, n]). Scale for k-block `kb` of column `j` lives at
//    scales()[kb * cols + j]; this is the layout tensor::qmatmul_into
//    consumes (block-contiguous with the int8 GEMM's k loop).
//  * kAlongCols — blocks run along each row (an embedding table
//    [vocab, dim] quantized per looked-up row). Scale for column-block
//    `b` of row `r` lives at scales()[r * blocks + b], so a single row
//    dequantizes from contiguous codes and contiguous scales.
//
// Quantization is symmetric round-to-nearest: scale = amax/127 per block,
// code = lround(value/scale) clamped to [-127, 127] (the -128 code is
// unused so negation is exact). An all-zero block gets scale 0 and all-zero
// codes; a block whose amax is so small that 1/scale overflows (denormal
// amax) also degrades to all-zero codes rather than invoking UB in lround.
// At the other extreme the scale is nudged down so that reconstructing the
// ±127 code of a near-FLT_MAX block stays finite.
//
// Quantization runs once per weight freeze (not per step), so these
// routines favour clarity over speed; the hot int8 kernels live in qops.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace odlp::tensor {

// Block length along the quantization axis. 32 keeps the int32 GEMM
// accumulator far from overflow (32 * 127 * 127 < 2^19) and bounds the
// round-trip error each fp32 scale must cover.
constexpr std::size_t kQuantBlock = 32;

enum class QuantAxis : std::uint8_t {
  kAlongRows,  // blocks along k of a [k, n] GEMM weight (column-wise runs)
  kAlongCols,  // blocks along each row (embedding tables)
};

// Round-trip error accounting for quantize(dequantize(x)) vs x.
struct QuantStats {
  std::size_t elements = 0;
  float max_abs_err = 0.0f;   // max |x - dq(x)| over all elements
  double mean_abs_err = 0.0;  // mean |x - dq(x)|
  double rms_err = 0.0;       // sqrt(mean (x - dq(x))^2)
  float max_scale = 0.0f;     // largest block scale (error bound: scale/2)
};

class QuantizedTensor {
 public:
  QuantizedTensor() = default;

  // Quantize `src` with blocks of kQuantBlock along `axis`. The final block
  // of a row/column may be short when the extent is not a multiple of the
  // block length (edge shapes quantize exactly like interior ones).
  static QuantizedTensor quantize(const Tensor& src,
                                  QuantAxis axis = QuantAxis::kAlongRows);

  // Reconstruct the fp32 matrix (code * block scale per element).
  Tensor dequantize() const;

  // Dequantize one row into dst[0..cols). kAlongCols only (embedding
  // lookup); when `accumulate`, adds into dst instead of overwriting.
  void dequantize_row_into(std::size_t r, float* dst, bool accumulate) const;

  // Error of this quantization against the source it was built from.
  QuantStats round_trip_stats(const Tensor& src) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return values_.empty(); }
  QuantAxis axis() const { return axis_; }
  // Blocks per column (kAlongRows) or per row (kAlongCols).
  std::size_t blocks() const { return blocks_; }

  // Row-major int8 codes, [rows * cols].
  const std::int8_t* values() const { return values_.data(); }
  // Block scales; indexing depends on axis (see file comment).
  const float* scales() const { return scales_.data(); }

  // Resident footprint, the quantity the memory ledger reports.
  std::size_t value_bytes() const { return values_.size(); }
  std::size_t scale_bytes() const { return scales_.size() * sizeof(float); }
  std::size_t resident_bytes() const { return value_bytes() + scale_bytes(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t blocks_ = 0;
  QuantAxis axis_ = QuantAxis::kAlongRows;
  std::vector<std::int8_t> values_;
  std::vector<float> scales_;
};

}  // namespace odlp::tensor
