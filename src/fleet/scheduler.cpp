#include "fleet/scheduler.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "eval/rouge.h"
#include "fleet/user_session.h"
#include "llm/batch_decode.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace odlp::fleet {

namespace {

// Sharded progress registry. Each user's {rounds, done, in_flight} triple
// lives in its shard (user % shards) and is only read or written under that
// shard's mutex — the mutex also publishes the session/eval-queue writes of
// the lane that just released the user to the lane that claims it next.
class SessionRegistry {
 public:
  SessionRegistry(std::size_t num_users, std::size_t num_shards)
      : num_users_(num_users), shards_(std::max<std::size_t>(1, num_shards)) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].runnable =
          &obs::registry().gauge(util::format("fleet.shard.%zu.runnable", s));
    }
    for (std::size_t u = 0; u < num_users; ++u) {
      shards_[u % shards_.size()].users.push_back(u);
      shards_[u % shards_.size()].slots.push_back({});
    }
    for (auto& shard : shards_) {
      shard.runnable->set(static_cast<double>(shard.users.size()));
    }
  }

  // Claims the runnable user with the fewest completed rounds. Two-phase:
  // scan every shard for the global minimum (each shard locked briefly),
  // then re-lock the winner's shard and claim if it is still runnable and
  // unchanged; any race retries the scan. Returns false when no shard has a
  // runnable user (all done, failed, or in flight).
  bool claim(std::size_t* user) {
    for (;;) {
      bool found = false;
      std::size_t best_shard = 0, best_idx = 0, best_rounds = 0;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        for (std::size_t i = 0; i < shard.slots.size(); ++i) {
          const Slot& slot = shard.slots[i];
          if (slot.done || slot.in_flight) continue;
          if (!found || slot.rounds < best_rounds) {
            found = true;
            best_shard = s;
            best_idx = i;
            best_rounds = slot.rounds;
          }
        }
      }
      if (!found) return false;
      Shard& shard = shards_[best_shard];
      std::lock_guard<std::mutex> lock(shard.mu);
      Slot& slot = shard.slots[best_idx];
      if (slot.done || slot.in_flight || slot.rounds != best_rounds) {
        continue;  // raced with another lane; rescan
      }
      slot.in_flight = true;
      shard.runnable->set(static_cast<double>(runnable_locked(shard)));
      *user = shard.users[best_idx];
      return true;
    }
  }

  void commit(std::size_t user, std::size_t rounds, bool done) {
    Shard& shard = shards_[user % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::size_t i = 0; i < shard.users.size(); ++i) {
      if (shard.users[i] != user) continue;
      shard.slots[i].in_flight = false;
      shard.slots[i].rounds = rounds;
      shard.slots[i].done = done;
      break;
    }
    shard.runnable->set(static_cast<double>(runnable_locked(shard)));
  }

  std::size_t unfinished() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Slot& slot : shard.slots) n += slot.done ? 0 : 1;
    }
    return n;
  }

  // Fairness snapshot at a wave boundary: how far the furthest-behind
  // unfinished user trails the furthest-ahead user (finished or not).
  std::size_t max_rounds_behind() const {
    std::size_t max_rounds = 0, min_unfinished = 0;
    bool any = false, any_unfinished = false;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Slot& slot : shard.slots) {
        max_rounds = any ? std::max(max_rounds, slot.rounds) : slot.rounds;
        any = true;
        if (!slot.done) {
          min_unfinished = any_unfinished
                               ? std::min(min_unfinished, slot.rounds)
                               : slot.rounds;
          any_unfinished = true;
        }
      }
    }
    if (!any_unfinished) return 0;
    return max_rounds - min_unfinished;
  }

 private:
  struct Slot {
    std::size_t rounds = 0;
    bool done = false;
    bool in_flight = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::size_t> users;  // user ids, parallel to slots
    std::vector<Slot> slots;
    obs::Gauge* runnable = nullptr;
  };

  static std::size_t runnable_locked(const Shard& shard) {
    std::size_t n = 0;
    for (const Slot& slot : shard.slots) {
      if (!slot.done && !slot.in_flight) ++n;
    }
    return n;
  }

  std::size_t num_users_;
  std::vector<Shard> shards_;
};

// Restores the global pool's lane count even if the wave loop throws.
struct PoolResizeGuard {
  std::size_t prev;
  explicit PoolResizeGuard(std::size_t lanes)
      : prev(util::ThreadPool::global().lanes()) {
    util::ThreadPool::global().resize(lanes);
  }
  ~PoolResizeGuard() { util::ThreadPool::global().resize(prev); }
};

}  // namespace

ConcurrentFleetResult run_concurrent_fleet(const ConcurrentFleetConfig& config) {
  if (config.spill_dir.empty()) {
    throw std::invalid_argument("run_concurrent_fleet: spill_dir is required");
  }
  const std::size_t num_users = config.fleet.num_devices;
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  // OS-level lanes are capped at the physical core count unless the config
  // opts into oversubscription: `threads` beyond the core count buys
  // scheduling freedom (wave slots, fairness), not compute. Determinism
  // never depends on the lane count, so the cap is invisible in the results.
  const std::size_t pool_lanes =
      config.oversubscribe
          ? threads
          : std::min(threads, std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency()));
  util::Stopwatch watch;
  const devicesim::StorageLedger storage_before =
      devicesim::storage_ledger_snapshot();

  ConcurrentFleetResult result;
  result.stats.users = num_users;
  if (num_users == 0) return result;

  // Per-user configs: template (or override) + method + per-user seed +
  // the shared base checkpoint every user personalizes from. The shared
  // base is what makes one pretrained model and one adapter-free decode
  // base valid for the whole fleet — and what the sequential run_fleet must
  // also be given (FleetConfig::shared_base_seed) for bit-identity.
  std::vector<exp::ExperimentConfig> user_configs(num_users);
  const std::uint64_t shared_base =
      config.fleet.shared_base_seed != 0
          ? config.fleet.shared_base_seed
          : config.fleet.seed_base * 7919 + 17;
  for (std::size_t u = 0; u < num_users; ++u) {
    const auto it = config.user_overrides.find(u);
    exp::ExperimentConfig ec = it != config.user_overrides.end()
                                   ? it->second
                                   : config.fleet.device_template;
    ec.method = config.method;
    ec.seed = config.fleet.seed_base + u;
    ec.base_seed = shared_base;
    if (!config.fleet.traffic_dir.empty()) {
      // Same record-once/replay-many layout as the sequential run_fleet, so
      // a recorded sequential run replays bit-identically here.
      const std::string path =
          config.fleet.traffic_dir + "/user-" + std::to_string(u) + ".obsf";
      if (std::filesystem::exists(path)) {
        ec.traffic_replay_path = path;
      } else {
        ec.traffic_record_path = path;
      }
    }
    user_configs[u] = std::move(ec);
  }

  const text::Tokenizer tokenizer = exp::make_device_tokenizer();
  const llm::ModelConfig mc =
      exp::make_model_config(user_configs[0], tokenizer);
  std::unique_ptr<llm::MiniLlm> pretrained =
      exp::make_base_model(user_configs[0], tokenizer);

  // Adapter-free clone of the base for cross-user batched decode: per-slot
  // LoRA overlays supply each request's adapter, so requests from different
  // users share forward steps.
  llm::MiniLlm decode_model(mc, shared_base);
  decode_model.copy_parameters_from(*pretrained);

  const nn::LoraConfig lora = exp::make_engine_config(user_configs[0]).lora;
  std::vector<WorkerContext> workers;
  workers.reserve(pool_lanes);
  for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
    workers.push_back(make_worker(mc, shared_base, *pretrained, lora));
  }
  const AdapterState initial = initial_adapter_state(*workers[0].model);
  std::vector<util::Rng> initial_dropout;
  for (nn::Linear* site : workers[0].sites) {
    initial_dropout.push_back(site->fallback_dropout_rng());
  }

  std::size_t cache_capacity = config.adapter_cache_capacity;
  if (cache_capacity == 0 && config.memory_budget_bytes != 0) {
    const devicesim::FleetMemoryLedger budget_ledger =
        devicesim::fleet_memory_ledger(
            decode_model, initial.bytes(), /*resident_adapters=*/0,
            config.decode_batch, exp::make_engine_config(user_configs[0]).buffer_bins,
            num_users);
    cache_capacity = budget_ledger.adapter_capacity(config.memory_budget_bytes);
  }
  if (cache_capacity == 0) cache_capacity = num_users;
  AdapterCache cache(cache_capacity, config.spill_dir);

  // Eval queues: queued[u] is only appended to by the lane that currently
  // holds user u in flight (or the main thread between waves), and drained
  // by the main thread at wave boundaries — the registry's shard mutexes
  // order those accesses.
  std::vector<std::vector<EvalJob>> queued(num_users);
  std::vector<std::unique_ptr<UserSession>> sessions(num_users);
  const auto sink = [&](EvalJob job) {
    queued[job.user].push_back(std::move(job));
  };
  for (std::size_t u = 0; u < num_users; ++u) {
    sessions[u] = make_user_session(u, user_configs[u], initial,
                                    initial_dropout, sink);
    cache.insert(u, AdapterState(initial));  // everyone starts from the fresh attach
  }

  static obs::Counter& c_starvation =
      obs::registry().counter("fleet.starvation.events");
  static obs::Gauge& g_behind = obs::registry().gauge("fleet.rounds_behind.max");
  static obs::Histogram& h_round =
      obs::registry().histogram("fleet.round.us", obs::default_us_bounds());
  static obs::Counter& c_dedup =
      obs::registry().counter("fleet.eval.jobs.deduped");
  // Per-user round-latency twin of fleet.round.us, recorded under the
  // session's scope so the spread ACROSS users is visible, not just the
  // fleet aggregate.
  static obs::ScopedHistogram& sh_round =
      obs::scoped_registry().histogram("fleet.user.round.us");
  obs::Histogram& h_occ = obs::registry().histogram(
      "decode.batch.occupancy.hist", std::vector<double>{1, 2, 4, 8, 16, 32, 64});
  const std::uint64_t occ_count_before = h_occ.count();
  const double occ_sum_before = h_occ.sum();

  SessionRegistry registry(num_users, config.shards);
  std::vector<std::vector<double>> lane_latencies(pool_lanes);
  std::atomic<std::size_t> faults{0};

  // The eval flush: drain every queued job, run all generations through one
  // shared batched scheduler (jobs live in a stable vector so overlay
  // pointers survive submission), then score in job order. Runs on the main
  // thread with the full pool free for the decode kernels.
  const auto flush_evals = [&] {
    std::vector<EvalJob> batch;
    for (auto& q : queued) {
      for (auto& job : q) batch.push_back(std::move(job));
      q.clear();
    }
    if (batch.empty()) return;

    // Identical-evaluation dedup. Evaluation is a pure function of
    // (user prompts, adapter snapshot, fixed per-(repeat, set) seeds), so
    // two jobs for the same user whose overlays hold equal values generate
    // bit-identical text — notably the learning-curve point at
    // seen == stream_size and the final per-set job, which a dedicated
    // sequential engine computes twice. Generate once, score each job from
    // the shared tickets.
    const auto same_eval = [](const EvalJob& x, const EvalJob& y) {
      if (x.user != y.user) return false;
      const nn::LoraOverlaySet& a = x.overlay;
      const nn::LoraOverlaySet& b = y.overlay;
      if (a.scaling != b.scaling || a.sites.size() != b.sites.size()) {
        return false;
      }
      for (std::size_t s = 0; s < a.sites.size(); ++s) {
        const auto equal = [](const tensor::Tensor& t, const tensor::Tensor& u) {
          return t.size() == u.size() &&
                 std::equal(t.data(), t.data() + t.size(), u.data());
        };
        if (!equal(a.sites[s].a, b.sites[s].a) ||
            !equal(a.sites[s].b, b.sites[s].b)) {
          return false;
        }
      }
      return true;
    };
    std::vector<std::size_t> alias(batch.size());
    for (std::size_t j = 0; j < batch.size(); ++j) {
      alias[j] = j;
      for (std::size_t k = 0; k < j; ++k) {
        if (alias[k] == k && same_eval(batch[j], batch[k])) {
          alias[j] = k;
          c_dedup.inc();
          break;
        }
      }
    }

    llm::BatchedDecodeScheduler scheduler(decode_model, config.decode_batch);
    // tickets[j][i][r]: job j, eval set i, sampling repeat r. The repeats of
    // one (job, set) share prompt AND adapter snapshot, so they form a
    // shared-prefix group: the prompt KV is primed once and forked, instead
    // of re-primed per repeat as a dedicated engine does.
    std::vector<std::vector<std::vector<std::size_t>>> tickets;
    tickets.reserve(batch.size());
    for (std::size_t j = 0; j < batch.size(); ++j) {
      const EvalJob& job = batch[j];
      const UserSession& s = *sessions[job.user];
      tickets.emplace_back();
      if (alias[j] != j) continue;  // scored from the original's tickets
      for (std::size_t i = 0; i < s.eval_sets.size(); ++i) {
        std::vector<util::Rng> rngs;
        rngs.reserve(s.config.eval_repeats);
        for (std::size_t r = 0; r < s.config.eval_repeats; ++r) {
          rngs.emplace_back(0xE7A1ull + r * 7919ull + i * 0x9E3779B9ull);
        }
        tickets.back().push_back(scheduler.submit_shared_prefix(
            tokenizer.encode_prompt(s.eval_sets[i]->question,
                                    mc.max_seq_len / 2),
            s.ec.sampler, rngs, &job.overlay));
      }
    }
    scheduler.run();
    result.stats.decode_steps += scheduler.steps();
    result.stats.decode_peak_occupancy = std::max(
        result.stats.decode_peak_occupancy, scheduler.peak_occupancy());

    for (std::size_t j = 0; j < batch.size(); ++j) {
      const EvalJob& job = batch[j];
      UserSession& s = *sessions[job.user];
      std::vector<double> scores(s.eval_sets.size(), 0.0);
      for (std::size_t r = 0; r < s.config.eval_repeats; ++r) {
        for (std::size_t i = 0; i < s.eval_sets.size(); ++i) {
          const std::string response =
              tokenizer.decode(scheduler.result(tickets[alias[j]][i][r]));
          scores[i] += eval::rouge1_f1(response, s.eval_sets[i]->reference);
        }
      }
      if (s.config.eval_repeats > 0) {
        for (double& v : scores) {
          v /= static_cast<double>(s.config.eval_repeats);
        }
      }
      double mean = 0.0;
      for (double v : scores) mean += v;
      if (!scores.empty()) mean /= static_cast<double>(scores.size());

      if (job.final_per_set) {
        s.result.final_per_set = std::move(scores);
        s.final_mean = mean;
      } else {
        s.curve.record(job.seen, mean);
      }
      --s.pending_evals;
      if (s.work_done && s.pending_evals == 0 && !s.finalized) {
        s.result.final_rouge =
            s.config.record_curve ? s.curve.final_rouge() : s.final_mean;
        s.result.curve = s.curve;
        s.result.engine_stats = s.stats;
        s.result.buffer = exp::buffer_composition(s.buffer);
        s.result.annotation_requests = s.oracle->annotation_requests();
        s.result.wall_seconds = s.work_seconds;
        s.finalized = true;
      }
    }
  };

  std::unique_ptr<obs::JournalWriter> journal;
  if (!config.journal_out.empty()) {
    journal = std::make_unique<obs::JournalWriter>(config.journal_out);
  }
  const auto journal_tick = [&] {
    if (!journal) return;
    journal->append(obs::full_snapshot(),
                    static_cast<std::uint64_t>(watch.elapsed_seconds() * 1e6));
  };
  const std::uint64_t scope_demotions_before =
      obs::scoped_registry().scopes().demotions();

  {
    PoolResizeGuard pool_guard(pool_lanes);
    util::ThreadPool& pool = util::ThreadPool::global();
    journal_tick();  // snapshot 0: pre-wave baseline
    for (;;) {
      const std::size_t unfinished = registry.unfinished();
      if (unfinished == 0) break;
      const std::size_t wave_slots =
          std::max(threads, config.wave_slot_factor * unfinished);
      pool.parallel_for_slotted(
          0, wave_slots, 1,
          [&](std::size_t begin, std::size_t end, std::size_t lane) {
            for (std::size_t slot = begin; slot < end; ++slot) {
              std::size_t user = 0;
              if (!registry.claim(&user)) return;
              UserSession& session = *sessions[user];
              util::Stopwatch round_sw;
              bool pinned = false;
              try {
                AdapterState adapter = cache.acquire(user);
                pinned = true;
                run_user_chunk(session, workers[lane], tokenizer, adapter,
                               sink);
                cache.release(user, std::move(adapter));
                pinned = false;
                const double seconds = round_sw.elapsed_seconds();
                lane_latencies[lane].push_back(seconds);
                h_round.record(seconds * 1e6);
                sh_round.record(session.scope, seconds * 1e6);
                registry.commit(user, session.rounds_done, session.work_done);
              } catch (const std::exception&) {
                // An injected fault (or spill-I/O corruption) aborted the
                // chunk mid-flight: the engine is gone, the user's moved-out
                // state is unrecoverable — drop the pin and retire the user
                // so the rest of the fleet proceeds.
                if (pinned) cache.abandon(user);
                session.failed = true;
                session.work_done = true;
                faults.fetch_add(1, std::memory_order_relaxed);
                registry.commit(user, session.rounds_done, /*done=*/true);
              }
            }
          });
      ++result.stats.waves;

      const std::size_t behind = registry.max_rounds_behind();
      result.stats.max_rounds_behind =
          std::max(result.stats.max_rounds_behind, behind);
      g_behind.set(static_cast<double>(behind));
      if (behind >= config.starvation_gap) {
        ++result.stats.starvation_events;
        c_starvation.inc();
      }

      // Wave boundary: all lanes are idle, so the decode kernels get the
      // whole pool.
      flush_evals();
      journal_tick();
    }
  }

  if (journal) {
    const io::ObsfWriter::Stats jstats = journal->finish();
    result.stats.journal_snapshots =
        static_cast<std::size_t>(journal->snapshots());
    result.stats.journal_file_bytes =
        static_cast<std::size_t>(jstats.file_bytes);
  }
  result.stats.scope_occupancy = obs::scoped_registry().scopes().occupancy();
  result.stats.scope_demotions = static_cast<std::size_t>(
      obs::scoped_registry().scopes().demotions() - scope_demotions_before);

  // Totals + latency distribution over every chunk from every lane.
  std::vector<double> latencies;
  for (auto& lane : lane_latencies) {
    latencies.insert(latencies.end(), lane.begin(), lane.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.stats.rounds = latencies.size();
  result.stats.faults = faults.load();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    result.stats.mean_round_seconds = sum / static_cast<double>(latencies.size());
    const std::size_t idx = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(latencies.size())));
    result.stats.p99_round_seconds = latencies[idx];
  }

  const std::uint64_t occ_count = h_occ.count() - occ_count_before;
  if (occ_count > 0) {
    result.stats.decode_mean_occupancy =
        (h_occ.sum() - occ_sum_before) / static_cast<double>(occ_count);
  }
  result.stats.cache = cache.stats();
  result.stats.ledger = devicesim::fleet_memory_ledger(
      decode_model, initial.bytes(), result.stats.cache.resident,
      config.decode_batch, sessions[0]->ec.buffer_bins, num_users);
  result.stats.ledger.storage_bytes_at_rest = static_cast<std::size_t>(
      devicesim::storage_ledger_snapshot()
          .delta_since(storage_before)
          .bytes_compressed);

  result.users.reserve(num_users);
  for (auto& session : sessions) {
    result.users.push_back(std::move(session->result));
  }
  result.stats.wall_seconds = watch.elapsed_seconds();
  if (result.stats.wall_seconds > 0.0) {
    result.stats.users_per_second =
        static_cast<double>(num_users) / result.stats.wall_seconds;
  }
  return result;
}

}  // namespace odlp::fleet
