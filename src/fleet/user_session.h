// Per-user session state for the concurrent fleet scheduler (DESIGN.md §13).
//
// A UserSession owns everything about one user that is NOT shared worker
// infrastructure: the oracle, the generated stream and held-out pool, the
// replacement policy and synthesizer (moved wholesale between activations —
// they carry internal counters/rng state), the selection buffer, the engine
// stats, the engine/trainer/dropout rng streams, and the learning curve.
// The trainable adapter + optimizer moments live in the AdapterCache as an
// AdapterState keyed by the session id.
//
// The determinism contract: activating a session on ANY worker engine,
// running one chunk, and deactivating it yields bit-identical user state to
// a dedicated sequential engine having run the same chunk. Session
// construction mirrors exp::run_experiment's rng derivations exactly (see
// experiment_data_seed / experiment_engine_seed), and activation overwrites
// every rng the engine draws from with the session's saved streams.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"
#include "eval/learning_curve.h"
#include "exp/experiment.h"
#include "fleet/adapter_state.h"
#include "llm/minillm.h"
#include "nn/lora_overlay.h"
#include "obs/scope.h"
#include "text/tokenizer.h"

namespace odlp::fleet {

// A deferred evaluation: generation runs later through the fleet's shared
// cross-user BatchedDecodeScheduler, against the adapter snapshot taken at
// enqueue time. Safe to defer because engine evaluation draws only from
// fixed per-(repeat, set) seeds — it never touches the user's training
// state (see core::PersonalizationEngine::evaluate_per_set).
struct EvalJob {
  std::size_t user = 0;
  bool final_per_set = false;  // else: one learning-curve point
  std::size_t seen = 0;        // curve x-axis (streamed sets so far)
  nn::LoraOverlaySet overlay;  // adapter values at enqueue time
};

struct UserSession {
  std::size_t id = 0;
  exp::ExperimentConfig config;
  core::EngineConfig ec;
  // Scope handle for per-user registry attribution ("user=<id>" samples via
  // obs::scoped_registry()); acquired in make_user_session. Stale after an
  // LRU demotion, in which case this user's samples aggregate under `other`.
  obs::ScopeTable::Handle scope;

  std::unique_ptr<data::UserOracle> oracle;
  data::GeneratedDataset dataset;
  std::vector<const data::DialogueSet*> eval_sets;

  std::unique_ptr<core::ReplacementPolicy> policy;
  std::unique_ptr<core::Synthesizer> synthesizer;
  util::Rng engine_rng{0};
  util::Rng trainer_rng{0};
  std::vector<util::Rng> dropout_rngs;  // one per LoRA site, model order
  core::DataBuffer buffer{1};
  core::EngineStats stats;
  eval::LearningCurve curve{""};

  exp::ExperimentResult result;

  // Scheduler progress.
  std::size_t cursor = 0;      // next stream position
  std::size_t chunk_size = 0;  // stream sets per chunk (= finetune interval)
  std::size_t rounds_done = 0;
  bool work_done = false;   // all chunks executed (evals may still be pending)
  bool failed = false;      // chunk aborted by an injected fault
  bool finalized = false;
  std::size_t pending_evals = 0;
  double final_mean = 0.0;  // mean of final_per_set, filled by the flush
  double work_seconds = 0.0;  // total chunk wall time
};

// Shared per-lane worker: a LoRA-attached clone of the pretrained base that
// any user's state can be swapped onto.
struct WorkerContext {
  std::unique_ptr<llm::MiniLlm> model;
  std::vector<nn::Linear*> sites;  // model->lora_linears(), cached
};

WorkerContext make_worker(const llm::ModelConfig& mc, std::uint64_t base_seed,
                          llm::MiniLlm& pretrained,
                          const nn::LoraConfig& lora);

// Adapter values of a freshly-attached worker (A init, B = 0, no moments) —
// every user starts from this state, exactly like a sequential engine.
AdapterState initial_adapter_state(llm::MiniLlm& model);

// Builds the session for `config` (seed derivations identical to
// run_experiment) and, when record_curve is set, emits the baseline
// (seen = 0) EvalJob via `eval_sink`. `initial_dropout` is the
// freshly-constructed worker's per-site dropout rng states; `initial` is
// used only for the baseline overlay snapshot.
std::unique_ptr<UserSession> make_user_session(
    std::size_t id, const exp::ExperimentConfig& config,
    const AdapterState& initial, const std::vector<util::Rng>& initial_dropout,
    const std::function<void(EvalJob)>& eval_sink);

// Runs one chunk of `session` on `worker`: swaps the user state in
// (adapter from `adapter`, buffer/stats/rngs/policy/synthesizer from the
// session), processes the next chunk of the stream (the engine fine-tunes
// at its configured interval; curve evaluations are emitted as EvalJobs),
// handles the tail fine-tune and the final per-set EvalJob on the last
// chunk, then swaps everything back out. `adapter` is updated in place.
void run_user_chunk(UserSession& session, WorkerContext& worker,
                    const text::Tokenizer& tokenizer, AdapterState& adapter,
                    const std::function<void(EvalJob)>& eval_sink);

}  // namespace odlp::fleet
