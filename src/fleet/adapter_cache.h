// LRU hot-swap cache for per-user AdapterState under a devicesim memory
// budget (DESIGN.md §13).
//
// The fleet keeps ONE shared base model resident; what competes for the
// remaining adapter budget is each user's LoRA values + Adam moments. The
// cache holds up to `capacity` unpinned states in memory, most-recently-
// released first. acquire() pins a user's state for the duration of a
// scheduler chunk (a pinned state never counts against, and is never chosen
// by, the LRU); release() returns it as most-recent and evicts the
// least-recently-used unpinned state past capacity — eviction spills the
// exact fp32 bytes to `<spill_dir>/user-<id>.adapter` with the repo's
// CRC-32 footer, and a later acquire() reloads and verifies them
// (util::CorruptionError on damage). Hit/miss/eviction/reload counters and
// a residency gauge land in the obs registry under fleet.adapter_cache.*.
//
// Thread safety: every method is safe to call from any scheduler lane; one
// internal mutex guards the map/LRU (spill I/O happens under it too —
// eviction is the slow path by design).
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fleet/adapter_state.h"

namespace odlp::fleet {

class AdapterCache {
 public:
  // `capacity` = max unpinned resident states (>= 1). `spill_dir` must be
  // writable; created on first spill.
  AdapterCache(std::size_t capacity, std::string spill_dir);

  // Seeds a user's initial state (counts as a release: most-recent, may
  // evict someone else past capacity).
  void insert(std::size_t user, AdapterState state);

  // Pins and returns the user's state, reloading from spill on a miss.
  AdapterState acquire(std::size_t user);

  // Unpins: re-inserts as most-recently-used and enforces capacity.
  void release(std::size_t user, AdapterState state);

  // Unpins without re-inserting (chunk aborted by an injected fault; the
  // user is abandoned and their state dropped).
  void abandon(std::size_t user);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;      // acquire had to reload from spill
    std::size_t evictions = 0;   // states spilled to disk
    std::size_t resident = 0;    // unpinned in-memory states right now
    std::size_t pinned = 0;
    std::size_t resident_bytes = 0;
    double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 1.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  Stats stats() const;

  std::size_t capacity() const { return capacity_; }

 private:
  std::string spill_path(std::size_t user) const;
  void evict_past_capacity_locked();

  const std::size_t capacity_;
  const std::string spill_dir_;
  mutable std::mutex mu_;
  // Front = most recently used. Entries hold the state itself.
  struct Entry {
    std::size_t user;
    AdapterState state;
  };
  std::list<Entry> lru_;
  std::unordered_map<std::size_t, std::list<Entry>::iterator> resident_;
  std::size_t pinned_ = 0;
  std::size_t resident_bytes_ = 0;
  Stats stats_;
};

}  // namespace odlp::fleet
