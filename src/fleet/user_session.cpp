#include "fleet/user_session.h"

#include <algorithm>
#include <cassert>

#include "data/profiles.h"
#include "lexicon/lexicon.h"
#include "llm/embedding_extractor.h"
#include "util/stopwatch.h"

namespace odlp::fleet {

WorkerContext make_worker(const llm::ModelConfig& mc, std::uint64_t base_seed,
                          llm::MiniLlm& pretrained,
                          const nn::LoraConfig& lora) {
  WorkerContext worker;
  // Constructing with the SAME ctor seed as the sequential path matters
  // twice over: attach_lora draws its A-init from the model rng (so every
  // worker and every sequential engine starts from identical adapters), and
  // each LoRA site's fallback dropout rng is seeded during construction (so
  // per-user dropout streams line up with a dedicated engine's).
  worker.model = std::make_unique<llm::MiniLlm>(mc, base_seed);
  worker.model->copy_parameters_from(pretrained);
  worker.model->attach_lora(lora);
  worker.sites = worker.model->lora_linears();
  return worker;
}

AdapterState initial_adapter_state(llm::MiniLlm& model) {
  AdapterState state;
  for (nn::Linear* site : model.lora_linears()) {
    assert(site->has_lora());
    AdapterState::Site s;
    s.a = site->mutable_lora_a().value;
    s.b = site->mutable_lora_b().value;
    state.sites.push_back(std::move(s));
  }
  return state;
}

std::unique_ptr<UserSession> make_user_session(
    std::size_t id, const exp::ExperimentConfig& config,
    const AdapterState& initial, const std::vector<util::Rng>& initial_dropout,
    const std::function<void(EvalJob)>& eval_sink) {
  auto session = std::make_unique<UserSession>();
  session->id = id;
  session->scope =
      obs::scoped_registry().scopes().acquire("user=" + std::to_string(id));
  session->config = config;
  session->ec = exp::make_engine_config(config);
  session->chunk_size = config.finetune_interval > 0 ? config.finetune_interval
                                                     : config.stream_size;
  if (session->chunk_size == 0) session->chunk_size = 1;

  const auto& dict = lexicon::builtin_dictionary();

  // Mirrors run_experiment step for step: oracle, generator, dataset, eval
  // subset, then the engine-side rng streams in hoisted-split order.
  const std::uint64_t data_seed = exp::experiment_data_seed(config);
  session->oracle =
      std::make_unique<data::UserOracle>(data_seed * 2654435761ull + 1, dict);
  session->dataset = exp::make_experiment_dataset(config, *session->oracle);

  const std::size_t n_eval =
      std::min(config.eval_subset, session->dataset.test.size());
  for (std::size_t i = 0; i < n_eval; ++i) {
    session->eval_sets.push_back(
        &session->dataset.test[i * session->dataset.test.size() / n_eval]);
  }

  util::Rng outer(exp::experiment_engine_seed(config));
  core::ParaphraseSynthesizer::Config synth_config;
  synth_config.sanity.mode = config.sanity_mode;
  synth_config.sanity.threshold = config.sanity_threshold;
  util::Rng synth_rng = outer.split();        // run_experiment's synth_rng
  util::Rng engine_ctor_rng = outer.split();  // …and engine_ctor_rng
  session->synthesizer = std::make_unique<core::ParaphraseSynthesizer>(
      dict, synth_rng, synth_config);
  session->policy = exp::make_policy(config.method);
  // The engine ctor splits its rng once for the trainer; replicate.
  session->engine_rng = engine_ctor_rng;
  session->trainer_rng = session->engine_rng.split();
  session->dropout_rngs = initial_dropout;
  session->buffer = core::DataBuffer(session->ec.buffer_bins);
  session->curve = eval::LearningCurve(config.method);

  session->result.dataset = config.dataset;
  session->result.method = config.method;

  if (config.record_curve) {
    EvalJob job;
    job.user = id;
    job.seen = 0;
    job.overlay = initial.overlay(session->ec.lora);
    ++session->pending_evals;
    eval_sink(std::move(job));
  }
  return session;
}

namespace {

nn::LoraOverlaySet snapshot_overlay(const WorkerContext& worker,
                                    const nn::LoraConfig& lora) {
  nn::LoraOverlaySet set;
  set.scaling = lora.alpha / static_cast<float>(lora.rank);
  set.sites.reserve(worker.sites.size());
  for (nn::Linear* site : worker.sites) {
    set.sites.push_back(
        {site->mutable_lora_a().value, site->mutable_lora_b().value});
  }
  return set;
}

}  // namespace

void run_user_chunk(UserSession& session, WorkerContext& worker,
                    const text::Tokenizer& tokenizer, AdapterState& adapter,
                    const std::function<void(EvalJob)>& eval_sink) {
  // Per-user offer attribution: the chunk's EngineStats delta, credited to
  // the session's scope (one relaxed add per counter per chunk).
  static obs::ScopedCounter& sc_accept =
      obs::scoped_registry().counter("fleet.user.offer.accept");
  static obs::ScopedCounter& sc_reject =
      obs::scoped_registry().counter("fleet.user.offer.reject");
  const std::size_t accepted_before =
      session.stats.admitted_free + session.stats.admitted_replacing;
  const std::size_t rejected_before = session.stats.rejected;

  util::Stopwatch chunk_sw;
  const auto& dict = lexicon::builtin_dictionary();
  const exp::ExperimentConfig& config = session.config;

  std::unique_ptr<llm::EmbeddingExtractor> extractor;
  if (config.embedding_source == "llm") {
    extractor = std::make_unique<llm::LlmEmbeddingExtractor>(*worker.model,
                                                             tokenizer);
  } else {
    extractor = std::make_unique<llm::BagOfWordsExtractor>(config.model_dim);
  }

  // --- Swap the user in. The ctor rng is a throwaway: both streams it
  // seeds (engine + trainer) are overwritten below with the session's saved
  // state, exactly as a dedicated engine would have evolved them.
  core::PersonalizationEngine engine(
      *worker.model, tokenizer, *extractor, *session.oracle, dict,
      std::move(session.policy), std::move(session.synthesizer), session.ec,
      util::Rng(0));
  install_adapter_state(adapter, *worker.model, engine.trainer());
  engine.rng() = session.engine_rng;
  engine.trainer().rng() = session.trainer_rng;
  for (std::size_t i = 0; i < worker.sites.size(); ++i) {
    worker.sites[i]->fallback_dropout_rng() = session.dropout_rngs[i];
  }
  engine.restore_buffer(std::move(session.buffer));
  engine.set_stats(session.stats);
  if (config.record_curve) {
    engine.set_finetune_hook([&](std::size_t seen) {
      EvalJob job;
      job.user = session.id;
      job.seen = seen;
      job.overlay = snapshot_overlay(worker, session.ec.lora);
      ++session.pending_evals;
      eval_sink(std::move(job));
    });
  }

  // --- One chunk: the next fine-tune interval's worth of stream.
  const std::size_t end =
      std::min(config.stream_size, session.cursor + session.chunk_size);
  for (; session.cursor < end; ++session.cursor) {
    engine.process(session.dataset.stream[session.cursor]);
  }

  if (session.cursor >= config.stream_size) {
    // Tail fine-tune + final evaluation, exactly as run_experiment orders
    // them after run_stream.
    if (config.finetune_interval == 0 ||
        config.stream_size % config.finetune_interval != 0) {
      engine.finetune_now();
      if (config.record_curve) {
        EvalJob job;
        job.user = session.id;
        job.seen = config.stream_size;
        job.overlay = snapshot_overlay(worker, session.ec.lora);
        ++session.pending_evals;
        eval_sink(std::move(job));
      }
    }
    EvalJob final_job;
    final_job.user = session.id;
    final_job.final_per_set = true;
    final_job.overlay = snapshot_overlay(worker, session.ec.lora);
    ++session.pending_evals;
    eval_sink(std::move(final_job));
    session.work_done = true;
  }

  // --- Swap the user out.
  adapter = extract_adapter_state(*worker.model, engine.trainer());
  session.stats = engine.stats();
  const std::size_t accepted_after =
      session.stats.admitted_free + session.stats.admitted_replacing;
  if (accepted_after > accepted_before) {
    sc_accept.inc(session.scope, accepted_after - accepted_before);
  }
  if (session.stats.rejected > rejected_before) {
    sc_reject.inc(session.scope, session.stats.rejected - rejected_before);
  }
  session.buffer = engine.take_buffer();
  session.policy = engine.take_policy();
  session.synthesizer = engine.take_synthesizer();
  session.engine_rng = engine.rng();
  session.trainer_rng = engine.trainer().rng();
  for (std::size_t i = 0; i < worker.sites.size(); ++i) {
    session.dropout_rngs[i] = worker.sites[i]->fallback_dropout_rng();
  }
  ++session.rounds_done;
  session.work_seconds += chunk_sw.elapsed_seconds();
}

}  // namespace odlp::fleet
