// One user's hot-swappable fine-tuning state: the LoRA adapter values for
// every q/k/v/o site plus the AdamW moments and step counter that continue
// their training. This is everything the optimizer math reads or writes
// across fine-tune rounds, so installing a state into any worker engine and
// extracting it afterwards is bit-identical to having trained on a
// dedicated engine throughout (the per-site dropout rngs travel separately,
// inside fleet::UserSession — they are live generator state, not tensors).
//
// AdapterState is also what the AdapterCache spills to disk under memory
// pressure: serialize()/deserialize() round-trip the exact fp32 bytes with
// the repo's standard CRC-32 footer, so an evicted-and-reloaded user
// resumes exactly where a never-evicted one would.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "llm/minillm.h"
#include "llm/trainer.h"
#include "nn/lora_overlay.h"
#include "nn/optimizer.h"

namespace odlp::fleet {

struct AdapterState {
  // Per lora_linears() site, in order: adapter values and Adam moments.
  struct Site {
    tensor::Tensor a;    // [in, r]
    tensor::Tensor b;    // [r, out]
    tensor::Tensor m_a;  // Adam first moment of a (empty until first step)
    tensor::Tensor v_a;
    tensor::Tensor m_b;
    tensor::Tensor v_b;
  };
  std::vector<Site> sites;
  long long opt_step_count = 0;

  std::size_t bytes() const;

  // Decode-time snapshot: adapter values only (no moments), with the
  // configured alpha/rank scaling — what BatchedDecodeScheduler applies
  // per-row on the shared base.
  nn::LoraOverlaySet overlay(const nn::LoraConfig& config) const;
};

// Reads the current adapter values + optimizer moments out of a worker
// model/trainer pair (the model must have LoRA attached).
AdapterState extract_adapter_state(llm::MiniLlm& model, llm::Trainer& trainer);

// Installs `state` into the worker: overwrites the adapter values in place
// and rebinds the optimizer moments to this model's parameters.
void install_adapter_state(const AdapterState& state, llm::MiniLlm& model,
                           llm::Trainer& trainer);

// CRC-framed binary round-trip (AtomicFileWriter spill file / whole-file
// image). deserialize throws util::CorruptionError on a damaged file.
void save_adapter_state(const AdapterState& state, const std::string& path);
AdapterState load_adapter_state(const std::string& path);

}  // namespace odlp::fleet
