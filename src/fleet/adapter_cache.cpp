#include "fleet/adapter_cache.h"

#include <stdexcept>
#include <sys/stat.h>

#include "obs/metrics.h"
#include "util/strings.h"

namespace odlp::fleet {

namespace {

obs::Counter& c_hits() {
  static obs::Counter& c =
      obs::registry().counter("fleet.adapter_cache.hits");
  return c;
}
obs::Counter& c_misses() {
  static obs::Counter& c =
      obs::registry().counter("fleet.adapter_cache.misses");
  return c;
}
obs::Counter& c_evictions() {
  static obs::Counter& c =
      obs::registry().counter("fleet.adapter_cache.evictions");
  return c;
}
obs::Gauge& g_resident() {
  static obs::Gauge& g =
      obs::registry().gauge("fleet.adapter_cache.resident");
  return g;
}
obs::Gauge& g_bytes() {
  static obs::Gauge& g =
      obs::registry().gauge("fleet.adapter_cache.resident_bytes");
  return g;
}

}  // namespace

AdapterCache::AdapterCache(std::size_t capacity, std::string spill_dir)
    : capacity_(capacity == 0 ? 1 : capacity),
      spill_dir_(std::move(spill_dir)) {
  if (spill_dir_.empty()) {
    throw std::invalid_argument("AdapterCache: spill_dir is required");
  }
}

std::string AdapterCache::spill_path(std::size_t user) const {
  return util::format("%s/user-%zu.adapter", spill_dir_.c_str(), user);
}

void AdapterCache::evict_past_capacity_locked() {
  while (lru_.size() > capacity_) {
    Entry& victim = lru_.back();
    ::mkdir(spill_dir_.c_str(), 0755);  // idempotent; first spill creates it
    save_adapter_state(victim.state, spill_path(victim.user));
    resident_bytes_ -= victim.state.bytes();
    resident_.erase(victim.user);
    lru_.pop_back();
    ++stats_.evictions;
    c_evictions().inc();
  }
  g_resident().set(static_cast<double>(lru_.size()));
  g_bytes().set(static_cast<double>(resident_bytes_));
}

void AdapterCache::insert(std::size_t user, AdapterState state) {
  std::lock_guard<std::mutex> lock(mu_);
  resident_bytes_ += state.bytes();
  lru_.push_front(Entry{user, std::move(state)});
  resident_[user] = lru_.begin();
  evict_past_capacity_locked();
}

AdapterState AdapterCache::acquire(std::size_t user) {
  std::lock_guard<std::mutex> lock(mu_);
  AdapterState state;
  auto it = resident_.find(user);
  if (it != resident_.end()) {
    state = std::move(it->second->state);
    resident_bytes_ -= state.bytes();
    lru_.erase(it->second);
    resident_.erase(it);
    ++stats_.hits;
    c_hits().inc();
  } else {
    state = load_adapter_state(spill_path(user));
    ++stats_.misses;
    c_misses().inc();
  }
  ++pinned_;
  g_resident().set(static_cast<double>(lru_.size()));
  g_bytes().set(static_cast<double>(resident_bytes_));
  return state;
}

void AdapterCache::release(std::size_t user, AdapterState state) {
  std::lock_guard<std::mutex> lock(mu_);
  --pinned_;
  resident_bytes_ += state.bytes();
  lru_.push_front(Entry{user, std::move(state)});
  resident_[user] = lru_.begin();
  evict_past_capacity_locked();
}

void AdapterCache::abandon(std::size_t user) {
  (void)user;
  std::lock_guard<std::mutex> lock(mu_);
  --pinned_;
}

AdapterCache::Stats AdapterCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.resident = lru_.size();
  s.pinned = pinned_;
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace odlp::fleet
