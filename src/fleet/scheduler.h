// Multi-tenant fleet scheduler (DESIGN.md §13): N concurrent users in one
// process, sharing one pretrained base model, one thread pool, one
// cross-user batched decode path, and one LRU adapter cache.
//
// Execution model — cooperative round-steps in waves:
//   * A user's work is divided into chunks of `finetune_interval` stream
//     sets (the natural unit: score/admit/synthesize each set, fine-tune at
//     the chunk boundary). One chunk == one round-step.
//   * Each wave runs `max(threads, wave_slot_factor * unfinished)` slots
//     through ThreadPool::parallel_for_slotted. A slot claims the runnable
//     user with the fewest completed rounds from the sharded registry, pins
//     the user's adapter in the AdapterCache, swaps the session onto the
//     lane's worker model, runs one chunk, and releases.
//   * Evaluations (learning-curve points and the final per-set pass) never
//     run inside a chunk: they are enqueued as EvalJobs against an adapter
//     snapshot and flushed at the wave boundary through ONE shared
//     BatchedDecodeScheduler, where generations from different users share
//     batched forward steps via per-slot LoRA overlays.
//
// Determinism contract: per-user results are bit-identical to the
// sequential exp::run_fleet at any thread/shard count, provided the fleet
// shares one base checkpoint (FleetConfig::shared_base_seed). Every source
// of nondeterminism is pinned: per-user rng streams travel with the
// session, batched decode is width-invariant, nested kernel parallelism
// runs inline on the lanes, and eval jobs use fixed per-(repeat, set)
// seeds.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "devicesim/memory_model.h"
#include "exp/fleet.h"
#include "fleet/adapter_cache.h"

namespace odlp::fleet {

struct ConcurrentFleetConfig {
  exp::FleetConfig fleet;       // users = fleet.num_devices, template + seeds
  std::string method = "Ours";  // method every user runs

  std::size_t threads = 4;  // scheduler lanes (ThreadPool is resized to this)
  std::size_t shards = 4;   // session-registry shards (user id % shards)
  // Cross-user batched decode width for the wave-boundary eval flush.
  std::size_t decode_batch = 8;
  // Wave slots = max(threads, wave_slot_factor * unfinished users): slack so
  // fast users take several turns per wave while a slow chunk occupies one
  // lane, instead of the whole wave blocking on the straggler.
  std::size_t wave_slot_factor = 2;
  // A starvation event fires at a wave boundary when some unfinished user
  // is >= this many rounds behind the furthest-ahead user.
  std::size_t starvation_gap = 3;
  // By default OS-level pool lanes are capped at the physical core count —
  // `threads` beyond that buys wave-slot scheduling freedom, not compute,
  // and oversubscribing cores only adds context switches to the chunk path.
  // Set true to force `threads` OS lanes regardless (e.g. to exercise true
  // lane concurrency on a small host).
  bool oversubscribe = false;

  // Adapter residency: explicit capacity wins; else derived from
  // memory_budget_bytes via FleetMemoryLedger::adapter_capacity; else every
  // adapter stays resident. Evictions spill to spill_dir (required).
  std::size_t adapter_cache_capacity = 0;
  std::size_t memory_budget_bytes = 0;
  std::string spill_dir;

  // Per-user template overrides (keyed by user index) — e.g. a rigged slow
  // user for starvation tests. The scheduler still applies method, seed
  // (seed_base + index) and the shared base seed on top.
  std::unordered_map<std::size_t, exp::ExperimentConfig> user_overrides;

  // When set, an OBSF metrics journal (obs/journal.h) of full_snapshot()
  // is appended at every wave boundary and on completion, capturing the
  // fleet's per-user trajectories (scoped samples ride along).
  std::string journal_out;
};

struct FleetRunStats {
  std::size_t users = 0;
  std::size_t rounds = 0;  // chunks executed across all users
  std::size_t waves = 0;
  std::size_t faults = 0;  // chunks aborted by injected faults
  double wall_seconds = 0.0;
  double users_per_second = 0.0;  // completed users / wall
  double mean_round_seconds = 0.0;
  double p99_round_seconds = 0.0;

  AdapterCache::Stats cache;

  std::size_t decode_steps = 0;           // batched eval-flush forward steps
  std::size_t decode_peak_occupancy = 0;  // max sessions in one step
  double decode_mean_occupancy = 0.0;     // mean sessions per step

  std::size_t starvation_events = 0;
  std::size_t max_rounds_behind = 0;  // worst gap seen at any wave boundary

  // Observability surface (journal_out / scoped metrics).
  std::size_t journal_snapshots = 0;   // snapshots appended to journal_out
  std::size_t journal_file_bytes = 0;  // journal size on disk (0 if unused)
  std::size_t scope_occupancy = 0;     // live scope labels at end of run
  std::size_t scope_demotions = 0;     // LRU demotions during the run

  devicesim::FleetMemoryLedger ledger;  // end-of-run residency snapshot
};

struct ConcurrentFleetResult {
  // users[i] corresponds to the sequential run_fleet's devices[i].
  std::vector<exp::ExperimentResult> users;
  FleetRunStats stats;
};

ConcurrentFleetResult run_concurrent_fleet(const ConcurrentFleetConfig& config);

}  // namespace odlp::fleet
