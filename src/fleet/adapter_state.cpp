#include "fleet/adapter_state.h"

#include <cassert>
#include <cstring>

#include "util/atomic_file.h"

namespace odlp::fleet {

namespace {

constexpr std::uint32_t kMagic = 0x44414C46u;  // "FLAD"
constexpr std::uint32_t kVersion = 1;

// The trainable parameters of a LoRA-attached model, in site order
// (a then b per site) — the shared ordering contract between extract and
// install, and the order optimizer moments are serialized in.
nn::ParameterList lora_parameters(llm::MiniLlm& model) {
  nn::ParameterList params;
  for (nn::Linear* site : model.lora_linears()) {
    assert(site->has_lora());
    params.push_back(&site->mutable_lora_a());
    params.push_back(&site->mutable_lora_b());
  }
  return params;
}

void write_tensor(util::AtomicFileWriter& writer, const tensor::Tensor& t) {
  writer.write_pod(static_cast<std::uint64_t>(t.rows()));
  writer.write_pod(static_cast<std::uint64_t>(t.cols()));
  if (t.size() > 0) writer.write(t.data(), t.size() * sizeof(float));
}

tensor::Tensor read_tensor(util::ByteReader& reader) {
  const auto rows = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  const auto cols = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  if (rows == 0 || cols == 0) return tensor::Tensor();
  if (rows * cols > (std::size_t(1) << 28)) {
    throw util::CorruptionError("adapter state: implausible tensor shape");
  }
  tensor::Tensor t(rows, cols);
  reader.read(t.data(), t.size() * sizeof(float));
  return t;
}

}  // namespace

std::size_t AdapterState::bytes() const {
  std::size_t n = sizeof(opt_step_count);
  for (const Site& s : sites) {
    n += (s.a.size() + s.b.size() + s.m_a.size() + s.v_a.size() +
          s.m_b.size() + s.v_b.size()) *
         sizeof(float);
  }
  return n;
}

nn::LoraOverlaySet AdapterState::overlay(const nn::LoraConfig& config) const {
  nn::LoraOverlaySet set;
  set.scaling = config.alpha / static_cast<float>(config.rank);
  set.sites.reserve(sites.size());
  for (const Site& s : sites) set.sites.push_back({s.a, s.b});
  return set;
}

AdapterState extract_adapter_state(llm::MiniLlm& model, llm::Trainer& trainer) {
  AdapterState state;
  const nn::ParameterList params = lora_parameters(model);
  const std::vector<nn::AdamW::State> moments =
      trainer.optimizer().export_state(params);
  state.opt_step_count = trainer.optimizer().step_count();
  state.sites.resize(params.size() / 2);
  for (std::size_t i = 0; i < state.sites.size(); ++i) {
    AdapterState::Site& s = state.sites[i];
    s.a = params[2 * i]->value;
    s.b = params[2 * i + 1]->value;
    s.m_a = moments[2 * i].m;
    s.v_a = moments[2 * i].v;
    s.m_b = moments[2 * i + 1].m;
    s.v_b = moments[2 * i + 1].v;
  }
  return state;
}

void install_adapter_state(const AdapterState& state, llm::MiniLlm& model,
                           llm::Trainer& trainer) {
  const nn::ParameterList params = lora_parameters(model);
  assert(params.size() == state.sites.size() * 2);
  std::vector<nn::AdamW::State> moments(params.size());
  for (std::size_t i = 0; i < state.sites.size(); ++i) {
    const AdapterState::Site& s = state.sites[i];
    params[2 * i]->value = s.a;
    params[2 * i + 1]->value = s.b;
    moments[2 * i] = {s.m_a, s.v_a};
    moments[2 * i + 1] = {s.m_b, s.v_b};
  }
  trainer.optimizer().import_state(params, std::move(moments),
                                   state.opt_step_count);
}

void save_adapter_state(const AdapterState& state, const std::string& path) {
  util::AtomicFileWriter writer(path);
  writer.write_pod(kMagic);
  writer.write_pod(kVersion);
  writer.write_pod(static_cast<std::uint64_t>(state.sites.size()));
  writer.write_pod(static_cast<std::int64_t>(state.opt_step_count));
  for (const AdapterState::Site& s : state.sites) {
    write_tensor(writer, s.a);
    write_tensor(writer, s.b);
    write_tensor(writer, s.m_a);
    write_tensor(writer, s.v_a);
    write_tensor(writer, s.m_b);
    write_tensor(writer, s.v_b);
  }
  writer.write_footer();
  writer.commit();
}

AdapterState load_adapter_state(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  const std::size_t payload = util::check_footer(bytes, "adapter spill " + path);
  util::ByteReader reader(bytes.data(), payload, "adapter spill " + path);
  if (reader.pod<std::uint32_t>() != kMagic) {
    throw util::CorruptionError("adapter spill: bad magic in " + path);
  }
  if (reader.pod<std::uint32_t>() != kVersion) {
    throw util::CorruptionError("adapter spill: unsupported version in " + path);
  }
  const auto num_sites = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  if (num_sites > 4096) {
    throw util::CorruptionError("adapter spill: implausible site count");
  }
  AdapterState state;
  state.opt_step_count = static_cast<long long>(reader.pod<std::int64_t>());
  state.sites.resize(num_sites);
  for (AdapterState::Site& s : state.sites) {
    s.a = read_tensor(reader);
    s.b = read_tensor(reader);
    s.m_a = read_tensor(reader);
    s.v_a = read_tensor(reader);
    s.m_b = read_tensor(reader);
    s.v_b = read_tensor(reader);
  }
  return state;
}

}  // namespace odlp::fleet
