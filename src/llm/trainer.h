// Fine-tuning loop: AdamW over encoded dialogue sets, with gradient
// accumulation to form the paper's mini-batches from the buffer contents.
#pragma once

#include <vector>

#include "llm/minillm.h"
#include "nn/optimizer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace odlp::llm {

struct TrainConfig {
  std::size_t epochs = 4;
  std::size_t batch_size = 16;   // sequences per optimizer step
  float learning_rate = 3e-4f;   // paper default (LoRA fine-tuning)
  float grad_clip = 1.0f;        // 0 disables clipping
  float weight_decay = 0.01f;
  bool shuffle_each_epoch = true;
};

struct TrainStats {
  double first_epoch_loss = 0.0;
  double final_epoch_loss = 0.0;
  std::size_t optimizer_steps = 0;
  std::size_t sequences_processed = 0;
  double wall_seconds = 0.0;
  double seconds_per_epoch = 0.0;
};

class Trainer {
 public:
  Trainer(MiniLlm& model, const TrainConfig& config, util::Rng rng);

  // Runs `config.epochs` passes over the examples. The optimizer persists
  // across calls so repeated fine-tuning rounds (the paper fine-tunes every
  // 800 streamed sets) keep their Adam moments.
  TrainStats fine_tune(const std::vector<text::Tokenizer::EncodedDialogue>& examples);

  void set_learning_rate(float lr) { optimizer_.set_learning_rate(lr); }
  float learning_rate() const { return optimizer_.learning_rate(); }
  const TrainConfig& config() const { return config_; }

  // Mutable access for the fleet's per-user state swap: the scheduler
  // snapshots/restores the optimizer moments and the epoch-shuffle rng so a
  // user resumed on any worker engine trains bit-identically.
  nn::AdamW& optimizer() { return optimizer_; }
  util::Rng& rng() { return rng_; }

 private:
  MiniLlm& model_;
  TrainConfig config_;
  nn::AdamW optimizer_;
  util::Rng rng_;
};

}  // namespace odlp::llm
