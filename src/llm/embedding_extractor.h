// Embedding extraction for the data-selection metrics.
//
// The paper obtains text embeddings "from Llama-3B last hidden layer during
// its inference". EmbeddingExtractor is the interface the core metrics
// consume; two implementations are provided (DESIGN.md decision #2):
//   * LlmEmbeddingExtractor — per-token last-hidden-layer states, with
//     mean-pooling for the whole-set vector (faithful to the paper).
//   * BagOfWordsExtractor   — cheap deterministic hashed bag-of-words
//     embedding, useful for tests and for devices too weak to run the LLM
//     during selection.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "llm/minillm.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"

namespace odlp::llm {

class EmbeddingExtractor {
 public:
  virtual ~EmbeddingExtractor() = default;

  // Per-token embeddings [T, D] for EOE. T >= 1 for non-empty text.
  // Normalizes + splits `textblock` and delegates to the word-list
  // overload below.
  tensor::Tensor token_embeddings(std::string_view textblock);

  // Same, over already-normalized words (the output of
  // text::normalize_and_split). The engine's scoring path normalizes the
  // text block exactly once and feeds the words to both the lexicon
  // metrics and this overload.
  virtual tensor::Tensor token_embeddings(const std::vector<std::string>& words) = 0;

  // Whole-text vector [1, D] for IDD / k-center (mean pool by default).
  virtual tensor::Tensor text_embedding(std::string_view textblock);

  virtual std::size_t dim() const = 0;
};

class LlmEmbeddingExtractor final : public EmbeddingExtractor {
 public:
  LlmEmbeddingExtractor(MiniLlm& model, const text::Tokenizer& tokenizer)
      : model_(model), tokenizer_(tokenizer) {}

  using EmbeddingExtractor::token_embeddings;
  tensor::Tensor token_embeddings(const std::vector<std::string>& words) override;
  std::size_t dim() const override { return model_.config().dim; }

 private:
  MiniLlm& model_;
  const text::Tokenizer& tokenizer_;
};

class BagOfWordsExtractor final : public EmbeddingExtractor {
 public:
  explicit BagOfWordsExtractor(std::size_t dim = 64) : dim_(dim) {}

  using EmbeddingExtractor::token_embeddings;
  tensor::Tensor token_embeddings(const std::vector<std::string>& words) override;
  std::size_t dim() const override { return dim_; }

 private:
  std::size_t dim_;
};

}  // namespace odlp::llm
