#include "llm/decode_session.h"

#include <cassert>

namespace odlp::llm {

DecodeSession::DecodeSession(MiniLlm& model) : model_(model) {
  caches_.reserve(model_.num_blocks());
  for (std::size_t l = 0; l < model_.num_blocks(); ++l) {
    caches_.emplace_back(model_.config().max_seq_len, model_.config().dim);
  }
}

DecodeSession::DecodeSession(MiniLlm& model, nn::InferencePrecision precision)
    : DecodeSession(model) {
  model.set_inference_precision(precision);
}

const tensor::Tensor& DecodeSession::step(int token) {
  assert(!full());
  const tensor::Tensor& logits =
      model_.forward_incremental(token, position_, caches_);
  ++position_;
  return logits;
}

const tensor::Tensor& DecodeSession::prime(const std::vector<int>& prompt) {
  assert(!prompt.empty());
  const tensor::Tensor* last = nullptr;
  for (int token : prompt) last = &step(token);
  return *last;
}

void DecodeSession::reset() {
  position_ = 0;
  for (auto& cache : caches_) cache.reset();
}

}  // namespace odlp::llm
