#include "llm/decode_session.h"

#include <cassert>

namespace odlp::llm {

DecodeSession::DecodeSession(MiniLlm& model) : model_(model) {
  caches_.reserve(model_.num_blocks());
  for (std::size_t l = 0; l < model_.num_blocks(); ++l) {
    caches_.emplace_back(model_.config().max_seq_len, model_.config().dim);
  }
}

tensor::Tensor DecodeSession::step(int token) {
  assert(!full());
  tensor::Tensor logits = model_.forward_incremental(token, position_, caches_);
  ++position_;
  return logits;
}

tensor::Tensor DecodeSession::prime(const std::vector<int>& prompt) {
  assert(!prompt.empty());
  tensor::Tensor logits;
  for (int token : prompt) logits = step(token);
  return logits;
}

void DecodeSession::reset() {
  position_ = 0;
  for (auto& cache : caches_) cache.reset();
}

}  // namespace odlp::llm
