#include "llm/decode_session.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace odlp::llm {

DecodeSession::DecodeSession(MiniLlm& model) : model_(model) {
  caches_.reserve(model_.num_blocks());
  for (std::size_t l = 0; l < model_.num_blocks(); ++l) {
    caches_.emplace_back(model_.config().max_seq_len, model_.config().dim);
  }
}

DecodeSession::DecodeSession(MiniLlm& model, nn::InferencePrecision precision)
    : DecodeSession(model) {
  model.set_inference_precision(precision);
}

const tensor::Tensor& DecodeSession::step(int token) {
  assert(!full());
  ODLP_TRACE_SCOPE("decode.step");
  static obs::Counter& c_steps = obs::registry().counter("decode.steps.total");
  static obs::Counter& c_kv_hits =
      obs::registry().counter("decode.kv.hit_positions");
  static obs::Histogram& h_step = obs::registry().histogram("decode.step_us");
  static obs::Gauge& g_tok_s = obs::registry().gauge("decode.tokens_per_sec");
  util::Stopwatch sw;
  const tensor::Tensor& logits =
      model_.forward_incremental(token, position_, caches_);
  // Every already-cached position is attention context served from the KV
  // cache instead of a recomputed forward — the O(T²) → O(T) win.
  c_kv_hits.inc(position_);
  ++position_;
  c_steps.inc();
  const double us = sw.elapsed_seconds() * 1e6;
  h_step.record(us);
  if (us > 0.0) g_tok_s.set(1e6 / us);
  return logits;
}

const tensor::Tensor& DecodeSession::prime(const std::vector<int>& prompt) {
  assert(!prompt.empty());
  ODLP_TRACE_SCOPE("decode.prime");
  const tensor::Tensor* last = nullptr;
  for (int token : prompt) last = &step(token);
  return *last;
}

void DecodeSession::reset() {
  position_ = 0;
  for (auto& cache : caches_) cache.reset();
}

}  // namespace odlp::llm
