// Continuous-batched KV-cached generation (DESIGN.md §12).
//
// One scheduler drives many independent generation requests through shared
// batched forward steps: every live session contributes one token per step
// (the projections and FFN run as m = occupancy GEMMs), and sessions join
// and leave between steps as prompts finish priming or hit <eos> / length
// limits — no padding, no waiting for stragglers. Outputs are bit-identical
// to running Sampler::generate_ids per request serially: row b of the
// batched forward is bit-exact with the single-session incremental path
// (see MultiHeadSelfAttention::forward_incremental_batch_ws) and each
// request samples from its own rng stream, so results never depend on what
// else happens to share the batch.
#pragma once

#include <cstddef>
#include <vector>

#include "llm/minillm.h"
#include "llm/sampler.h"
#include "nn/kv_cache.h"
#include "util/rng.h"

namespace odlp::llm {

class BatchedDecodeScheduler {
 public:
  // Up to `max_batch` (>= 1) sessions decode per step. Each slot lazily
  // allocates one KvCache per transformer block, sized [max_seq_len, dim];
  // the storage is reused across the requests that pass through the slot.
  BatchedDecodeScheduler(MiniLlm& model, std::size_t max_batch);

  // Enqueues one generation request and returns its ticket. `rng` is taken
  // by value: the request owns an independent sampling stream. Prompts
  // longer than max_seq_len are truncated exactly as Sampler does; an empty
  // prompt finishes immediately with an empty result. Requests are admitted
  // to free slots in submission (FIFO) order.
  std::size_t submit(std::vector<int> prompt_ids, const SamplerConfig& config,
                     util::Rng rng);

  // Cross-tenant variant: `overlay` (borrowed; must outlive run()) carries
  // one user's LoRA snapshot, applied to this request's rows only — the
  // model must be an adapter-free shared base (see
  // MiniLlm::forward_incremental_batch). nullptr decodes on the bare base.
  // Requests with different overlays freely share batched steps; each row
  // stays bit-identical to a serial decode on that user's adapted model.
  std::size_t submit(std::vector<int> prompt_ids, const SamplerConfig& config,
                     util::Rng rng, const nn::LoraOverlaySet* overlay);

  // Shared-prefix group: rngs.size() requests with the SAME prompt, sampler
  // config, and overlay — the shape of evaluation sampling repeats. The
  // prompt prefix (all but its last token) is primed once by the group's
  // first request; the others fork that KV snapshot and feed only the last
  // prompt token themselves (so each samples from its own logits row).
  // Bit-exact with submitting each request separately: the forked KV bytes
  // are precisely what re-priming would recompute, and every request still
  // owns its rng stream. Tickets are returned in `rngs` order. Followers
  // wait in the queue until the snapshot exists; other requests are
  // admitted past them, so slots never idle on an unprimed prefix.
  std::vector<std::size_t> submit_shared_prefix(
      std::vector<int> prompt_ids, const SamplerConfig& config,
      const std::vector<util::Rng>& rngs, const nn::LoraOverlaySet* overlay);

  // Runs batched steps until every submitted request has finished.
  void run();

  // Generated ids (without the prompt, without <eos>) of a finished ticket.
  const std::vector<int>& result(std::size_t ticket) const;

  bool finished() const { return finished_ == requests_.size(); }

  // Number of batched forward steps executed so far.
  std::size_t steps() const { return steps_; }

  // Largest number of sessions that shared one forward step so far. The
  // engine reports this to the devicesim memory ledger as its live KV
  // session count.
  std::size_t peak_occupancy() const { return peak_occupancy_; }

  std::size_t max_batch() const { return slots_.size(); }

 private:
  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

  struct Request {
    std::vector<int> prompt;  // already truncated to max_seq_len
    SamplerConfig config;
    util::Rng rng;
    const nn::LoraOverlaySet* overlay = nullptr;  // borrowed, may be null
    std::size_t group = kNoGroup;  // shared-prefix group index
    bool leader = false;           // primes the group's prefix
    std::vector<int> generated;
    bool done = false;
  };

  // One shared prompt prefix: the leader's KV after feeding all prompt
  // tokens but the last, deep-copied at the fork point and freed once every
  // member has been admitted.
  struct PrefixGroup {
    std::vector<nn::KvCache> snapshot;
    std::size_t fed = 0;  // tokens in the snapshot (= prompt size - 1)
    bool ready = false;
    std::size_t awaiting = 0;  // members not yet admitted
  };

  // One decode lane. `position` counts tokens fed so far (== every cache's
  // len); `prompt_cursor` counts prompt tokens fed, so the lane is priming
  // while prompt_cursor < prompt.size() and logits are discarded until the
  // last prompt token has been fed.
  struct Slot {
    std::vector<nn::KvCache> caches;  // one per transformer block
    std::size_t request = 0;
    std::size_t position = 0;
    std::size_t prompt_cursor = 0;
    int pending_token = 0;  // token this lane feeds on the next step
    bool live = false;
  };

  bool admissible(std::size_t ticket) const;
  void admit_pending();
  // Consumes this step's logits row for `slot` (fed token already counted);
  // replicates Sampler::generate_ids_cached's loop exactly.
  void advance(Slot& slot, const float* logits, std::size_t vocab);
  void finish(Slot& slot);

  MiniLlm& model_;
  std::vector<Slot> slots_;
  std::vector<Request> requests_;
  std::vector<PrefixGroup> groups_;
  std::vector<std::size_t> queue_;  // tickets awaiting a slot
  std::size_t queue_head_ = 0;
  std::size_t finished_ = 0;
  std::size_t steps_ = 0;
  std::size_t peak_occupancy_ = 0;

  // Per-step scratch, member-owned so steady-state steps don't allocate.
  std::vector<int> step_tokens_;
  std::vector<int> step_positions_;
  std::vector<std::vector<nn::KvCache>*> step_caches_;
  std::vector<std::size_t> step_slots_;
  std::vector<const nn::LoraOverlaySet*> step_overlays_;
  bool any_overlay_ = false;  // skip the overlay arg entirely when unused
};

}  // namespace odlp::llm
