#include "llm/minillm.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace odlp::llm {

double ModelConfig::forward_flops(std::size_t seq_len) const {
  const double T = static_cast<double>(seq_len);
  const double D = static_cast<double>(dim);
  const double F = static_cast<double>(ff_hidden);
  const double V = static_cast<double>(vocab_size);
  // Per block: 4 projections (2*T*D*D each), attention scores+mix (2 * 2*T*T*D),
  // MLP (2 * 2*T*D*F).
  const double per_block = 4.0 * 2.0 * T * D * D + 4.0 * T * T * D + 4.0 * T * D * F;
  return static_cast<double>(layers) * per_block + 2.0 * T * D * V;
}

MiniLlm::MiniLlm(const ModelConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      tok_emb_("tok_emb", config.vocab_size, config.dim, rng_),
      pos_emb_("pos_emb", config.max_seq_len, config.dim, rng_),
      final_ln_(config.use_rmsnorm ? nn::Norm::Kind::kRmsNorm
                                   : nn::Norm::Kind::kLayerNorm,
                "final_ln", config.dim),
      lm_head_("lm_head", config.dim, config.vocab_size, rng_, /*bias=*/false) {
  const nn::Norm::Kind norm_kind = config.use_rmsnorm
                                       ? nn::Norm::Kind::kRmsNorm
                                       : nn::Norm::Kind::kLayerNorm;
  blocks_.reserve(config.layers);
  for (std::size_t l = 0; l < config.layers; ++l) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        util::format("block%zu", l), config.dim, config.heads, config.ff_hidden,
        rng_, norm_kind));
  }
}

tensor::Tensor MiniLlm::forward(const std::vector<int>& ids, bool training) {
  assert(!ids.empty());
  std::vector<int> clipped = ids;
  if (clipped.size() > config_.max_seq_len) clipped.resize(config_.max_seq_len);
  cached_ids_ = clipped;

  std::vector<int> positions(clipped.size());
  for (std::size_t t = 0; t < clipped.size(); ++t) positions[t] = static_cast<int>(t);

  tensor::Tensor x = tok_emb_.forward(clipped);
  x += pos_emb_.forward(positions);
  for (auto& block : blocks_) x = block->forward(x, training);
  cached_final_hidden_ = final_ln_.forward(x);
  return lm_head_.forward(cached_final_hidden_, training);
}

void MiniLlm::backward(const tensor::Tensor& dlogits) {
  assert(dlogits.rows() == cached_ids_.size());
  tensor::Tensor dhidden = lm_head_.backward(dlogits);
  tensor::Tensor dx = final_ln_.backward(dhidden);
  for (std::size_t l = blocks_.size(); l-- > 0;) {
    dx = blocks_[l]->backward(dx);
  }
  tok_emb_.backward(dx);
  pos_emb_.backward(dx);
}

tensor::Tensor MiniLlm::forward_incremental(int token, std::size_t position,
                                            std::vector<nn::KvCache>& caches) {
  assert(caches.size() == blocks_.size());
  assert(position < config_.max_seq_len);
  tensor::Tensor x = tok_emb_.forward({token});
  x += pos_emb_.forward({static_cast<int>(position)});
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    x = blocks_[l]->forward_incremental(x, caches[l]);
  }
  return lm_head_.forward(final_ln_.forward(x), /*training=*/false);
}

tensor::Tensor MiniLlm::hidden_states(const std::vector<int>& ids) {
  forward(ids, /*training=*/false);
  return cached_final_hidden_;
}

void MiniLlm::attach_lora(const nn::LoraConfig& config) {
  if (has_lora_) return;
  // Freeze everything, then install adapters (whose params are trainable).
  for (nn::Parameter* p : parameters()) p->trainable = false;
  for (auto& block : blocks_) block->attach_lora(config, rng_);
  has_lora_ = true;
}

void MiniLlm::merge_lora() {
  if (!has_lora_) return;
  for (auto& block : blocks_) block->merge_lora();
  // merge_lora re-enables trainability on the attention projections; restore
  // the rest of the network to trainable as well for symmetry.
  for (nn::Parameter* p : parameters()) p->trainable = true;
  has_lora_ = false;
}

nn::ParameterList MiniLlm::parameters() {
  nn::ParameterList params;
  tok_emb_.collect_parameters(params);
  pos_emb_.collect_parameters(params);
  for (auto& block : blocks_) block->collect_parameters(params);
  final_ln_.collect_parameters(params);
  lm_head_.collect_parameters(params);
  return params;
}

std::size_t MiniLlm::num_parameters() { return nn::count_total(parameters()); }

std::size_t MiniLlm::num_trainable_parameters() {
  return nn::count_trainable(parameters());
}

namespace {
constexpr std::uint32_t kMagic = 0x4f444c50;  // "ODLP"
}

void MiniLlm::save(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("MiniLlm::save: cannot open " + path);
  const nn::ParameterList params = parameters();
  std::fwrite(&kMagic, sizeof(kMagic), 1, f);
  const std::uint64_t count = params.size();
  std::fwrite(&count, sizeof(count), 1, f);
  for (const nn::Parameter* p : params) {
    const std::uint64_t rows = p->value.rows(), cols = p->value.cols();
    std::fwrite(&rows, sizeof(rows), 1, f);
    std::fwrite(&cols, sizeof(cols), 1, f);
    std::fwrite(p->value.data(), sizeof(float), p->value.size(), f);
  }
  std::fclose(f);
}

void MiniLlm::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("MiniLlm::load: cannot open " + path);
  auto fail = [&](const char* why) {
    std::fclose(f);
    throw std::runtime_error(std::string("MiniLlm::load: ") + why);
  };
  std::uint32_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kMagic) {
    fail("bad magic");
  }
  nn::ParameterList params = parameters();
  std::uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 || count != params.size()) {
    fail("parameter count mismatch (was LoRA attached at save time?)");
  }
  for (nn::Parameter* p : params) {
    std::uint64_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1 ||
        rows != p->value.rows() || cols != p->value.cols()) {
      fail("shape mismatch");
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(), f) !=
        p->value.size()) {
      fail("truncated file");
    }
  }
  std::fclose(f);
}

}  // namespace odlp::llm
