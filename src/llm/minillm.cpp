#include "llm/minillm.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/atomic_file.h"
#include "util/strings.h"

namespace odlp::llm {

double ModelConfig::forward_flops(std::size_t seq_len) const {
  const double T = static_cast<double>(seq_len);
  const double D = static_cast<double>(dim);
  const double F = static_cast<double>(ff_hidden);
  const double V = static_cast<double>(vocab_size);
  // Per block: 4 projections (2*T*D*D each), attention scores+mix (2 * 2*T*T*D),
  // MLP (2 * 2*T*D*F).
  const double per_block = 4.0 * 2.0 * T * D * D + 4.0 * T * T * D + 4.0 * T * D * F;
  return static_cast<double>(layers) * per_block + 2.0 * T * D * V;
}

MiniLlm::MiniLlm(const ModelConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      tok_emb_("tok_emb", config.vocab_size, config.dim, rng_),
      pos_emb_("pos_emb", config.max_seq_len, config.dim, rng_),
      final_ln_(config.use_rmsnorm ? nn::Norm::Kind::kRmsNorm
                                   : nn::Norm::Kind::kLayerNorm,
                "final_ln", config.dim),
      lm_head_("lm_head", config.dim, config.vocab_size, rng_, /*bias=*/false) {
  const nn::Norm::Kind norm_kind = config.use_rmsnorm
                                       ? nn::Norm::Kind::kRmsNorm
                                       : nn::Norm::Kind::kLayerNorm;
  blocks_.reserve(config.layers);
  for (std::size_t l = 0; l < config.layers; ++l) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        util::format("block%zu", l), config.dim, config.heads, config.ff_hidden,
        rng_, norm_kind));
  }
}

tensor::Tensor& MiniLlm::forward_shared(const std::vector<int>& ids,
                                        bool training) {
  assert(!ids.empty());
  ws_.reset();
  std::vector<int> clipped = ids;
  if (clipped.size() > config_.max_seq_len) clipped.resize(config_.max_seq_len);
  cached_ids_ = clipped;

  std::vector<int> positions(clipped.size());
  for (std::size_t t = 0; t < clipped.size(); ++t) positions[t] = static_cast<int>(t);

  tensor::Tensor& emb = ws_.acquire(clipped.size(), config_.dim);
  tok_emb_.forward_into(clipped, emb, /*accumulate=*/false, training);
  pos_emb_.forward_into(positions, emb, /*accumulate=*/true, training);
  const tensor::Tensor* x = &emb;
  for (auto& block : blocks_) x = &block->forward_ws(*x, training, ws_);
  cached_final_hidden_ = final_ln_.forward_ws(*x, ws_);
  return lm_head_.forward_ws(cached_final_hidden_, training, ws_);
}

tensor::Tensor MiniLlm::forward(const std::vector<int>& ids, bool training) {
  return forward_shared(ids, training);
}

void MiniLlm::backward(const tensor::Tensor& dlogits) {
  assert(dlogits.rows() == cached_ids_.size());
  ws_.reset();
  tensor::Tensor& dhidden = lm_head_.backward_ws(dlogits, ws_);
  const tensor::Tensor* dx = &final_ln_.backward_ws(dhidden, ws_);
  for (std::size_t l = blocks_.size(); l-- > 0;) {
    dx = &blocks_[l]->backward_ws(*dx, ws_);
  }
  tok_emb_.backward(*dx);
  pos_emb_.backward(*dx);
}

tensor::Tensor& MiniLlm::forward_incremental(int token, std::size_t position,
                                             std::vector<nn::KvCache>& caches) {
  assert(caches.size() == blocks_.size());
  assert(position < config_.max_seq_len);
  ws_.reset();
  tensor::Tensor& emb = ws_.acquire(1, config_.dim);
  tok_emb_.forward_into({token}, emb);
  pos_emb_.forward_into({static_cast<int>(position)}, emb, /*accumulate=*/true);
  const tensor::Tensor* x = &emb;
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    x = &blocks_[l]->forward_incremental_ws(*x, caches[l], ws_);
  }
  return lm_head_.forward_ws(final_ln_.forward_ws(*x, ws_), /*training=*/false,
                             ws_);
}

tensor::Tensor& MiniLlm::forward_incremental_batch(
    const std::vector<int>& tokens, const std::vector<int>& positions,
    const std::vector<std::vector<nn::KvCache>*>& caches,
    const nn::LoraOverlaySet* const* overlays) {
  const std::size_t n = tokens.size();
  assert(n > 0);
  assert(positions.size() == n && caches.size() == n);
  assert(!(overlays && has_lora_));  // overlay replaces attached adapters
#ifndef NDEBUG
  for (std::size_t b = 0; b < n; ++b) {
    assert(caches[b] != nullptr && caches[b]->size() == blocks_.size());
    assert(static_cast<std::size_t>(positions[b]) < config_.max_seq_len);
  }
#endif
  ws_.reset();
  tensor::Tensor& emb = ws_.acquire(n, config_.dim);
  tok_emb_.forward_into(tokens, emb);
  pos_emb_.forward_into(positions, emb, /*accumulate=*/true);
  if (layer_cache_scratch_.size() < n) layer_cache_scratch_.resize(n);
  const tensor::Tensor* x = &emb;
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    for (std::size_t b = 0; b < n; ++b) {
      layer_cache_scratch_[b] = &(*caches[b])[l];
    }
    x = &blocks_[l]->forward_incremental_batch_ws(
        *x, layer_cache_scratch_.data(), n, ws_, overlays, l * 4);
  }
  return lm_head_.forward_ws(final_ln_.forward_ws(*x, ws_), /*training=*/false,
                             ws_);
}

tensor::Tensor MiniLlm::hidden_states(const std::vector<int>& ids) {
  forward(ids, /*training=*/false);
  return cached_final_hidden_;
}

void MiniLlm::attach_lora(const nn::LoraConfig& config) {
  if (has_lora_) return;
  // Freeze everything, then install adapters (whose params are trainable).
  for (nn::Parameter* p : parameters()) p->trainable = false;
  for (auto& block : blocks_) block->attach_lora(config, rng_);
  has_lora_ = true;
}

std::vector<nn::Linear*> MiniLlm::lora_linears() {
  std::vector<nn::Linear*> linears;
  for (auto& block : blocks_) block->attention().collect_linears(linears);
  return linears;
}

std::vector<nn::Linear*> MiniLlm::all_linears() {
  std::vector<nn::Linear*> linears;
  for (auto& block : blocks_) block->collect_linears(linears);
  linears.push_back(&lm_head_);
  return linears;
}

void MiniLlm::set_inference_precision(nn::InferencePrecision precision) {
  if (precision == precision_) return;
  if (precision == nn::InferencePrecision::kInt8) {
#ifdef ODLP_INT8
    for (nn::Linear* l : all_linears()) l->quantize_frozen();
    tok_emb_.quantize_frozen();
    pos_emb_.quantize_frozen();
#else
    throw std::runtime_error(
        "MiniLlm::set_inference_precision: INT8 backend unavailable "
        "(built -DODLP_INT8=OFF)");
#endif
  } else {
    for (nn::Linear* l : all_linears()) l->dequantize_frozen();
    tok_emb_.dequantize_frozen();
    pos_emb_.dequantize_frozen();
  }
  precision_ = precision;
}

void MiniLlm::refresh_quantized_weights() {
  if (precision_ != nn::InferencePrecision::kInt8) return;
  for (nn::Linear* l : all_linears()) l->quantize_frozen();
  tok_emb_.quantize_frozen();
  pos_emb_.quantize_frozen();
}

MiniLlm::WeightFootprint MiniLlm::weight_footprint() {
  WeightFootprint fp;
  std::size_t linear_fp32 = 0;
  for (nn::Linear* l : all_linears()) {
    fp.matmul_weight_bytes += l->resident_weight_bytes();
    fp.scale_bytes += l->quant_scale_bytes();
    linear_fp32 += l->fp32_weight_bytes();
    if (const nn::Parameter* a = l->lora_a()) {
      fp.lora_bytes += a->value.size() * sizeof(float);
    }
    if (const nn::Parameter* b = l->lora_b()) {
      fp.lora_bytes += b->value.size() * sizeof(float);
    }
  }
  fp.embedding_bytes = tok_emb_.resident_bytes() + pos_emb_.resident_bytes();
  fp.scale_bytes += tok_emb_.quant_scale_bytes() + pos_emb_.quant_scale_bytes();
  const std::size_t emb_fp32 =
      (tok_emb_.table().value.size() + pos_emb_.table().value.size()) *
      sizeof(float);
  // Norm gains/biases are whatever parameter mass is neither a Linear, a
  // LoRA adapter, nor an embedding table.
  std::size_t all_fp32 = 0;
  for (const nn::Parameter* p : parameters()) {
    all_fp32 += p->value.size() * sizeof(float);
  }
  fp.norm_bytes = all_fp32 - linear_fp32 - fp.lora_bytes - emb_fp32;
  return fp;
}

void MiniLlm::merge_lora() {
  if (!has_lora_) return;
  for (auto& block : blocks_) block->merge_lora();
  // merge_lora re-enables trainability on the attention projections; restore
  // the rest of the network to trainable as well for symmetry.
  for (nn::Parameter* p : parameters()) p->trainable = true;
  has_lora_ = false;
}

nn::ParameterList MiniLlm::parameters() {
  nn::ParameterList params;
  tok_emb_.collect_parameters(params);
  pos_emb_.collect_parameters(params);
  for (auto& block : blocks_) block->collect_parameters(params);
  final_ln_.collect_parameters(params);
  lm_head_.collect_parameters(params);
  return params;
}

void MiniLlm::copy_parameters_from(MiniLlm& other) {
  nn::ParameterList dst = parameters();
  nn::ParameterList src = other.parameters();
  if (dst.size() != src.size()) {
    throw std::invalid_argument(
        "copy_parameters_from: parameter count mismatch (architecture or "
        "LoRA state differs)");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->name != src[i]->name ||
        !dst[i]->value.same_shape(src[i]->value)) {
      throw std::invalid_argument("copy_parameters_from: parameter '" +
                                  src[i]->name + "' mismatch");
    }
    dst[i]->value = src[i]->value;
    dst[i]->trainable = src[i]->trainable;
  }
  refresh_quantized_weights();
}

std::size_t MiniLlm::num_parameters() { return nn::count_total(parameters()); }

std::size_t MiniLlm::num_trainable_parameters() {
  return nn::count_trainable(parameters());
}

namespace {
constexpr std::uint32_t kMagicLegacy = 0x4f444c50;  // "ODLP": unchecksummed v1
constexpr std::uint32_t kMagic = 0x324d444f;        // "ODM2": CRC footer v2
}

void MiniLlm::save(const std::string& path) {
  util::AtomicFileWriter out(path);
  const nn::ParameterList params = parameters();
  out.write_pod(kMagic);
  out.write_pod<std::uint64_t>(params.size());
  for (const nn::Parameter* p : params) {
    out.write_pod<std::uint64_t>(p->value.rows());
    out.write_pod<std::uint64_t>(p->value.cols());
    out.write(p->value.data(), p->value.size() * sizeof(float));
  }
  out.write_footer();
  out.commit();
}

void MiniLlm::load(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  if (bytes.size() < sizeof(std::uint32_t)) {
    throw util::CorruptionError("MiniLlm::load: file too small");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::size_t body_end = bytes.size();
  if (magic == kMagic) {
    body_end = util::check_footer(bytes, "MiniLlm::load");
  } else if (magic != kMagicLegacy) {
    throw util::CorruptionError("MiniLlm::load: bad magic");
  }

  util::ByteReader in(bytes.data(), body_end, "MiniLlm::load");
  in.pod<std::uint32_t>();  // magic, already validated
  nn::ParameterList params = parameters();
  const auto count = in.pod<std::uint64_t>();
  if (count != params.size()) {
    throw util::CorruptionError(
        "MiniLlm::load: parameter count mismatch (was LoRA attached at save "
        "time?)");
  }
  // Parse into staging tensors first so a corrupt tail cannot leave the
  // live model half-overwritten.
  std::vector<tensor::Tensor> staged;
  staged.reserve(params.size());
  for (const nn::Parameter* p : params) {
    const auto rows = in.pod<std::uint64_t>();
    const auto cols = in.pod<std::uint64_t>();
    if (rows != p->value.rows() || cols != p->value.cols()) {
      throw util::CorruptionError("MiniLlm::load: shape mismatch");
    }
    tensor::Tensor t(rows, cols);
    in.read(t.data(), t.size() * sizeof(float));
    staged.push_back(std::move(t));
  }
  if (magic == kMagic && in.remaining() != 0) {
    throw util::CorruptionError("MiniLlm::load: trailing bytes");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(staged[i]);
  }
  refresh_quantized_weights();
}

}  // namespace odlp::llm
