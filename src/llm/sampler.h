// Autoregressive text generation from a MiniLlm.
//
// The paper fixes temperature τ = 0.5 for all evaluation generation; the
// sampler supports temperature scaling (τ → 0 degenerates to greedy argmax)
// and optional top-k truncation.
#pragma once

#include <vector>

#include "llm/minillm.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace odlp::llm {

struct SamplerConfig {
  float temperature = 0.5f;     // paper's evaluation setting
  std::size_t top_k = 0;        // 0 = no truncation
  float top_p = 1.0f;           // nucleus sampling mass; 1.0 = disabled
  std::size_t max_new_tokens = 24;
  // Use KV-cached incremental decoding (O(T) per token instead of a full
  // O(T²) recompute). On by default: logits are numerically equivalent up
  // to float summation order, so sampled outputs can differ from the
  // recompute path only in rare near-tie cases. Set false to force the
  // full-recompute path (e.g. for bitwise A/B comparisons against it).
  bool use_kv_cache = true;
};

// Samples one token id from a row of logits under `config` (temperature
// scaling, optional top-k and top-p truncation), consuming randomness from
// `rng`. Shared by Sampler and BatchedDecodeScheduler so batched decode
// reproduces the serial sampling stream bit-for-bit.
int sample_from_logits(const float* logits, std::size_t vocab,
                       const SamplerConfig& config, util::Rng& rng);

class Sampler {
 public:
  Sampler(MiniLlm& model, const SamplerConfig& config, util::Rng rng)
      : model_(model), config_(config), rng_(rng) {}

  // Continues `prompt_ids` until <eos> or max_new_tokens; returns only the
  // newly generated ids (without the prompt, without <eos>).
  std::vector<int> generate_ids(const std::vector<int>& prompt_ids);

  // Convenience: encode question as prompt, generate, decode response text.
  std::string respond(const text::Tokenizer& tokenizer, std::string_view question);

  SamplerConfig& config() { return config_; }

 private:
  std::vector<int> generate_ids_cached(const std::vector<int>& prompt_ids);

  MiniLlm& model_;
  SamplerConfig config_;
  util::Rng rng_;
};

}  // namespace odlp::llm
