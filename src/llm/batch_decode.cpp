#include "llm/batch_decode.h"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"

namespace odlp::llm {

BatchedDecodeScheduler::BatchedDecodeScheduler(MiniLlm& model,
                                               std::size_t max_batch)
    : model_(model) {
  if (max_batch == 0) {
    throw std::invalid_argument("BatchedDecodeScheduler: max_batch must be >= 1");
  }
  slots_.resize(max_batch);
}

std::size_t BatchedDecodeScheduler::submit(std::vector<int> prompt_ids,
                                           const SamplerConfig& config,
                                           util::Rng rng) {
  return submit(std::move(prompt_ids), config, rng, nullptr);
}

std::size_t BatchedDecodeScheduler::submit(std::vector<int> prompt_ids,
                                           const SamplerConfig& config,
                                           util::Rng rng,
                                           const nn::LoraOverlaySet* overlay) {
  const std::size_t ticket = requests_.size();
  Request req;
  req.prompt = std::move(prompt_ids);
  req.overlay = overlay;
  if (overlay) any_overlay_ = true;
  if (req.prompt.size() > model_.config().max_seq_len) {
    req.prompt.resize(model_.config().max_seq_len);
  }
  req.config = config;
  req.rng = rng;
  if (req.prompt.empty()) {
    // Same as Sampler::generate_ids_cached on an empty prompt: nothing to
    // prime, nothing generated.
    req.done = true;
    ++finished_;
  } else {
    queue_.push_back(ticket);
  }
  requests_.push_back(std::move(req));
  return ticket;
}

std::vector<std::size_t> BatchedDecodeScheduler::submit_shared_prefix(
    std::vector<int> prompt_ids, const SamplerConfig& config,
    const std::vector<util::Rng>& rngs, const nn::LoraOverlaySet* overlay) {
  std::vector<std::size_t> tickets;
  tickets.reserve(rngs.size());
  // Sharing pays off only when there is a prefix to share (>= 2 prompt
  // tokens) and someone to share it with; otherwise these are plain
  // submissions.
  const bool shared = rngs.size() >= 2 && prompt_ids.size() >= 2;
  const std::size_t group = shared ? groups_.size() : kNoGroup;
  if (shared) {
    groups_.emplace_back();
    groups_.back().awaiting = rngs.size();
  }
  for (std::size_t i = 0; i < rngs.size(); ++i) {
    const std::size_t ticket =
        submit(prompt_ids, config, rngs[i], overlay);  // copies the prompt
    requests_[ticket].group = group;
    requests_[ticket].leader = shared && i == 0;
    tickets.push_back(ticket);
  }
  return tickets;
}

bool BatchedDecodeScheduler::admissible(std::size_t ticket) const {
  const Request& req = requests_[ticket];
  return req.group == kNoGroup || req.leader || groups_[req.group].ready;
}

void BatchedDecodeScheduler::admit_pending() {
  static obs::Counter& c_joins =
      obs::registry().counter("decode.batch.joins.total");
  static obs::Counter& c_forks =
      obs::registry().counter("decode.batch.prefix_forks.total");
  for (std::size_t s = 0; s < slots_.size() && queue_head_ < queue_.size();
       ++s) {
    Slot& slot = slots_[s];
    if (slot.live) continue;
    // First admissible ticket in FIFO order; followers whose prefix
    // snapshot does not exist yet are skipped (their leader is live or
    // earlier in the queue, so progress is guaranteed).
    std::size_t q = queue_head_;
    while (q < queue_.size() && !admissible(queue_[q])) ++q;
    if (q >= queue_.size()) break;
    const std::size_t ticket = queue_[q];
    if (q == queue_head_) {
      ++queue_head_;
    } else {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(q));
    }
    Request& req = requests_[ticket];
    PrefixGroup* group = req.group == kNoGroup ? nullptr : &groups_[req.group];
    if (group && !req.leader && group->fed > 0) {
      // Fork: adopt the group's primed KV (bytes identical to re-priming
      // the prefix) and feed only the last prompt token ourselves, so the
      // sampled continuation reads this request's own logits row.
      slot.caches = group->snapshot;
      slot.position = group->fed;
      slot.prompt_cursor = req.prompt.size() - 1;
      slot.pending_token = req.prompt[slot.prompt_cursor];
      c_forks.inc();
    } else {
      if (slot.caches.empty()) {
        slot.caches.reserve(model_.num_blocks());
        for (std::size_t l = 0; l < model_.num_blocks(); ++l) {
          slot.caches.emplace_back(model_.config().max_seq_len,
                                   model_.config().dim);
        }
      } else {
        for (auto& cache : slot.caches) cache.reset();
      }
      slot.position = 0;
      slot.prompt_cursor = 0;
      slot.pending_token = req.prompt[0];
    }
    if (group && --group->awaiting == 0) {
      group->snapshot.clear();  // last member admitted; free the KV copy
      group->snapshot.shrink_to_fit();
    }
    slot.request = ticket;
    slot.live = true;
    c_joins.inc();
  }
}

void BatchedDecodeScheduler::run() {
  static obs::Counter& c_steps =
      obs::registry().counter("decode.batch.steps.total");
  static obs::Counter& c_tokens =
      obs::registry().counter("decode.batch.tokens.total");
  static obs::Gauge& g_occ = obs::registry().gauge("decode.batch.occupancy");
  // Cumulative occupancy distribution (the gauge above only holds the last
  // step): bucket upper bounds in sessions-per-step, so the fleet bench can
  // report how full batched steps actually ran, not just the peak.
  static obs::Histogram& h_occ = obs::registry().histogram(
      "decode.batch.occupancy.hist",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64});
  while (finished_ < requests_.size()) {
    admit_pending();
    step_tokens_.clear();
    step_positions_.clear();
    step_caches_.clear();
    step_slots_.clear();
    step_overlays_.clear();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (!slot.live) continue;
      step_tokens_.push_back(slot.pending_token);
      step_positions_.push_back(static_cast<int>(slot.position));
      step_caches_.push_back(&slot.caches);
      step_slots_.push_back(s);
      step_overlays_.push_back(requests_[slot.request].overlay);
    }
    assert(!step_slots_.empty());
    const std::size_t occupancy = step_slots_.size();
    g_occ.set(static_cast<double>(occupancy));
    h_occ.record(static_cast<double>(occupancy));
    if (occupancy > peak_occupancy_) peak_occupancy_ = occupancy;
    {
      ODLP_TRACE_SCOPE("batch_decode.step");
      const tensor::Tensor& logits = model_.forward_incremental_batch(
          step_tokens_, step_positions_, step_caches_,
          any_overlay_ ? step_overlays_.data() : nullptr);
      ++steps_;
      c_steps.inc();
      c_tokens.inc(occupancy);
      // The logits reference dies at the next forward, so every lane must
      // consume its row before the next step.
      for (std::size_t r = 0; r < step_slots_.size(); ++r) {
        advance(slots_[step_slots_[r]], logits.row(r), logits.cols());
      }
    }
  }
}

void BatchedDecodeScheduler::advance(Slot& slot, const float* logits,
                                     std::size_t vocab) {
  Request& req = requests_[slot.request];
  ++slot.position;  // pending_token was just fed
  if (slot.prompt_cursor < req.prompt.size()) {
    ++slot.prompt_cursor;
    if (slot.prompt_cursor < req.prompt.size()) {
      if (req.leader && slot.prompt_cursor + 1 == req.prompt.size()) {
        // Fork point: every prompt token but the last is in the KV. The
        // snapshot is taken BEFORE the last token is fed so each group
        // member computes its own final-prompt-token logits.
        PrefixGroup& group = groups_[req.group];
        group.snapshot = slot.caches;
        group.fed = slot.position;
        group.ready = true;
      }
      // Still priming: these logits are discarded, exactly as
      // DecodeSession::prime keeps only the last prompt token's logits.
      slot.pending_token = req.prompt[slot.prompt_cursor];
      return;
    }
    // The last prompt token was just fed — fall through and treat these
    // logits as the generation loop's entry point.
  }
  // From here this mirrors one iteration of Sampler::generate_ids_cached:
  // loop bound, full-session check, sample, <eos> check, emit, re-check.
  if (req.generated.size() >= req.config.max_new_tokens) {
    finish(slot);
    return;
  }
  if (slot.position >= model_.config().max_seq_len) {
    finish(slot);
    return;
  }
  const int next = sample_from_logits(logits, vocab, req.config, req.rng);
  if (next == text::Vocab::kEos) {
    finish(slot);
    return;
  }
  req.generated.push_back(next);
  if (req.generated.size() >= req.config.max_new_tokens) {
    finish(slot);
    return;
  }
  slot.pending_token = next;
}

void BatchedDecodeScheduler::finish(Slot& slot) {
  static obs::Counter& c_leaves =
      obs::registry().counter("decode.batch.leaves.total");
  requests_[slot.request].done = true;
  slot.live = false;
  ++finished_;
  c_leaves.inc();
}

const std::vector<int>& BatchedDecodeScheduler::result(
    std::size_t ticket) const {
  assert(ticket < requests_.size() && requests_[ticket].done);
  return requests_[ticket].generated;
}

}  // namespace odlp::llm
