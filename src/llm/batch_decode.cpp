#include "llm/batch_decode.h"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"

namespace odlp::llm {

BatchedDecodeScheduler::BatchedDecodeScheduler(MiniLlm& model,
                                               std::size_t max_batch)
    : model_(model) {
  if (max_batch == 0) {
    throw std::invalid_argument("BatchedDecodeScheduler: max_batch must be >= 1");
  }
  slots_.resize(max_batch);
}

std::size_t BatchedDecodeScheduler::submit(std::vector<int> prompt_ids,
                                           const SamplerConfig& config,
                                           util::Rng rng) {
  const std::size_t ticket = requests_.size();
  Request req;
  req.prompt = std::move(prompt_ids);
  if (req.prompt.size() > model_.config().max_seq_len) {
    req.prompt.resize(model_.config().max_seq_len);
  }
  req.config = config;
  req.rng = rng;
  if (req.prompt.empty()) {
    // Same as Sampler::generate_ids_cached on an empty prompt: nothing to
    // prime, nothing generated.
    req.done = true;
    ++finished_;
  } else {
    queue_.push_back(ticket);
  }
  requests_.push_back(std::move(req));
  return ticket;
}

void BatchedDecodeScheduler::admit_pending() {
  static obs::Counter& c_joins =
      obs::registry().counter("decode.batch.joins.total");
  for (std::size_t s = 0; s < slots_.size() && queue_head_ < queue_.size();
       ++s) {
    Slot& slot = slots_[s];
    if (slot.live) continue;
    const std::size_t ticket = queue_[queue_head_++];
    Request& req = requests_[ticket];
    if (slot.caches.empty()) {
      slot.caches.reserve(model_.num_blocks());
      for (std::size_t l = 0; l < model_.num_blocks(); ++l) {
        slot.caches.emplace_back(model_.config().max_seq_len,
                                 model_.config().dim);
      }
    } else {
      for (auto& cache : slot.caches) cache.reset();
    }
    slot.request = ticket;
    slot.position = 0;
    slot.prompt_cursor = 0;
    slot.pending_token = req.prompt[0];
    slot.live = true;
    c_joins.inc();
  }
}

void BatchedDecodeScheduler::run() {
  static obs::Counter& c_steps =
      obs::registry().counter("decode.batch.steps.total");
  static obs::Counter& c_tokens =
      obs::registry().counter("decode.batch.tokens.total");
  static obs::Gauge& g_occ = obs::registry().gauge("decode.batch.occupancy");
  while (finished_ < requests_.size()) {
    admit_pending();
    step_tokens_.clear();
    step_positions_.clear();
    step_caches_.clear();
    step_slots_.clear();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (!slot.live) continue;
      step_tokens_.push_back(slot.pending_token);
      step_positions_.push_back(static_cast<int>(slot.position));
      step_caches_.push_back(&slot.caches);
      step_slots_.push_back(s);
    }
    assert(!step_slots_.empty());
    const std::size_t occupancy = step_slots_.size();
    g_occ.set(static_cast<double>(occupancy));
    if (occupancy > peak_occupancy_) peak_occupancy_ = occupancy;
    {
      ODLP_TRACE_SCOPE("batch_decode.step");
      const tensor::Tensor& logits = model_.forward_incremental_batch(
          step_tokens_, step_positions_, step_caches_);
      ++steps_;
      c_steps.inc();
      c_tokens.inc(occupancy);
      // The logits reference dies at the next forward, so every lane must
      // consume its row before the next step.
      for (std::size_t r = 0; r < step_slots_.size(); ++r) {
        advance(slots_[step_slots_[r]], logits.row(r), logits.cols());
      }
    }
  }
}

void BatchedDecodeScheduler::advance(Slot& slot, const float* logits,
                                     std::size_t vocab) {
  Request& req = requests_[slot.request];
  ++slot.position;  // pending_token was just fed
  if (slot.prompt_cursor < req.prompt.size()) {
    ++slot.prompt_cursor;
    if (slot.prompt_cursor < req.prompt.size()) {
      // Still priming: these logits are discarded, exactly as
      // DecodeSession::prime keeps only the last prompt token's logits.
      slot.pending_token = req.prompt[slot.prompt_cursor];
      return;
    }
    // The last prompt token was just fed — fall through and treat these
    // logits as the generation loop's entry point.
  }
  // From here this mirrors one iteration of Sampler::generate_ids_cached:
  // loop bound, full-session check, sample, <eos> check, emit, re-check.
  if (req.generated.size() >= req.config.max_new_tokens) {
    finish(slot);
    return;
  }
  if (slot.position >= model_.config().max_seq_len) {
    finish(slot);
    return;
  }
  const int next = sample_from_logits(logits, vocab, req.config, req.rng);
  if (next == text::Vocab::kEos) {
    finish(slot);
    return;
  }
  req.generated.push_back(next);
  if (req.generated.size() >= req.config.max_new_tokens) {
    finish(slot);
    return;
  }
  slot.pending_token = next;
}

void BatchedDecodeScheduler::finish(Slot& slot) {
  static obs::Counter& c_leaves =
      obs::registry().counter("decode.batch.leaves.total");
  requests_[slot.request].done = true;
  slot.live = false;
  ++finished_;
  c_leaves.inc();
}

const std::vector<int>& BatchedDecodeScheduler::result(
    std::size_t ticket) const {
  assert(ticket < requests_.size() && requests_[ticket].done);
  return requests_[ticket].generated;
}

}  // namespace odlp::llm
