// DecodeSession: KV-cached autoregressive decoding over a MiniLlm.
//
// Where MiniLlm::forward recomputes the whole sequence each step (O(T²)
// per generated token), a DecodeSession feeds tokens once, caching each
// layer's keys/values, so a decode step is O(T). Logits are numerically
// equivalent to the last row of a full forward over the same prefix (up to
// float addition order) — asserted by tests/test_decode_session.cpp.
//
// Inference-only: stepping a session does not disturb gradients, but it
// reuses the model's module activations, so do not interleave with a
// training forward/backward pair.
#pragma once

#include <memory>
#include <vector>

#include "llm/minillm.h"
#include "nn/kv_cache.h"

namespace odlp::llm {

class DecodeSession {
 public:
  explicit DecodeSession(MiniLlm& model);

  // Convenience overload that switches the model to `precision` before the
  // first step (a plain set_inference_precision — the setting outlives the
  // session; callers wanting the old mode back switch it themselves).
  DecodeSession(MiniLlm& model, nn::InferencePrecision precision);

  // Feeds one token at the next position; returns its logits [1, vocab] as a
  // reference into the model's workspace — valid until the next step()/
  // forward on the same model (copy out to keep). Precondition: !full().
  const tensor::Tensor& step(int token);

  // Convenience: feeds all prompt tokens, returns the last token's logits
  // (same lifetime rules as step()). Precondition: prompt fits in the
  // remaining capacity and is non-empty.
  const tensor::Tensor& prime(const std::vector<int>& prompt);

  std::size_t length() const { return position_; }
  bool full() const { return position_ >= model_.config().max_seq_len; }
  void reset();

 private:
  MiniLlm& model_;
  std::size_t position_ = 0;
  std::vector<nn::KvCache> caches_;  // one per transformer block
};

}  // namespace odlp::llm
