#include "llm/trainer.h"

#include <numeric>

#include "nn/loss.h"
#include "util/stopwatch.h"

namespace odlp::llm {

namespace {
nn::AdamW::Config adamw_config(const TrainConfig& c) {
  nn::AdamW::Config a;
  a.lr = c.learning_rate;
  a.weight_decay = c.weight_decay;
  return a;
}
}  // namespace

Trainer::Trainer(MiniLlm& model, const TrainConfig& config, util::Rng rng)
    : model_(model), config_(config), optimizer_(adamw_config(config)), rng_(rng) {}

TrainStats Trainer::fine_tune(
    const std::vector<text::Tokenizer::EncodedDialogue>& examples) {
  TrainStats stats;
  if (examples.empty() || config_.epochs == 0) return stats;

  util::Stopwatch watch;
  nn::ParameterList params = model_.parameters();
  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  // Reused across sequences: their buffers reach steady state after the
  // longest sequence and stop allocating (see bench_perf's alloc probe).
  nn::CrossEntropyResult ce;
  std::vector<int> targets;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.shuffle_each_epoch) rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t epoch_count = 0;
    std::size_t in_batch = 0;
    nn::zero_grads(params);
    for (std::size_t idx : order) {
      const auto& ex = examples[idx];
      if (ex.input.size() < 2) continue;
      tensor::Tensor& logits = model_.forward_shared(ex.input, /*training=*/true);
      targets = ex.targets;
      targets.resize(logits.rows(), -1);  // forward may have truncated
      nn::cross_entropy_into(logits, targets, ce);
      if (ce.count == 0) continue;
      model_.backward(ce.dlogits);
      epoch_loss += ce.loss;
      ++epoch_count;
      ++stats.sequences_processed;
      if (++in_batch >= config_.batch_size) {
        if (config_.grad_clip > 0.0f) nn::clip_grad_norm(params, config_.grad_clip);
        optimizer_.step(params);
        nn::zero_grads(params);
        in_batch = 0;
        ++stats.optimizer_steps;
      }
    }
    if (in_batch > 0) {
      if (config_.grad_clip > 0.0f) nn::clip_grad_norm(params, config_.grad_clip);
      optimizer_.step(params);
      nn::zero_grads(params);
      ++stats.optimizer_steps;
    }
    const double mean_loss = epoch_count ? epoch_loss / epoch_count : 0.0;
    if (epoch == 0) stats.first_epoch_loss = mean_loss;
    stats.final_epoch_loss = mean_loss;
  }
  stats.wall_seconds = watch.elapsed_seconds();
  stats.seconds_per_epoch = stats.wall_seconds / static_cast<double>(config_.epochs);
  return stats;
}

}  // namespace odlp::llm
