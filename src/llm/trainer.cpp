#include "llm/trainer.h"

#include <numeric>

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace odlp::llm {

namespace {
nn::AdamW::Config adamw_config(const TrainConfig& c) {
  nn::AdamW::Config a;
  a.lr = c.learning_rate;
  a.weight_decay = c.weight_decay;
  return a;
}
}  // namespace

Trainer::Trainer(MiniLlm& model, const TrainConfig& config, util::Rng rng)
    : model_(model), config_(config), optimizer_(adamw_config(config)), rng_(rng) {}

TrainStats Trainer::fine_tune(
    const std::vector<text::Tokenizer::EncodedDialogue>& examples) {
  TrainStats stats;
  if (examples.empty() || config_.epochs == 0) return stats;
  ODLP_TRACE_SCOPE("train.fine_tune");
  static obs::Histogram& h_fwd =
      obs::registry().histogram("train.step.forward_us");
  static obs::Histogram& h_bwd =
      obs::registry().histogram("train.step.backward_us");
  static obs::Histogram& h_opt =
      obs::registry().histogram("train.step.optimizer_us");
  static obs::Counter& c_tokens = obs::registry().counter("train.tokens.total");
  static obs::Counter& c_steps = obs::registry().counter("train.steps.total");
  static obs::Counter& c_wall_us = obs::registry().counter("train.wall_us.total");
  static obs::Gauge& g_tok_s = obs::registry().gauge("train.tokens_per_sec");
  static obs::Gauge& g_sec_epoch =
      obs::registry().gauge("train.seconds_per_epoch.last");

  util::Stopwatch watch;
  std::size_t tokens = 0;
  nn::ParameterList params = model_.parameters();
  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  // Reused across sequences: their buffers reach steady state after the
  // longest sequence and stop allocating (see bench_perf's alloc probe).
  nn::CrossEntropyResult ce;
  std::vector<int> targets;
  util::Stopwatch sw;

  const auto optimizer_step = [&] {
    ODLP_TRACE_SCOPE("train.step.optimizer");
    sw.reset();
    if (config_.grad_clip > 0.0f) nn::clip_grad_norm(params, config_.grad_clip);
    optimizer_.step(params);
    nn::zero_grads(params);
    ++stats.optimizer_steps;
    c_steps.inc();
    h_opt.record(sw.elapsed_seconds() * 1e6);
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    ODLP_TRACE_SCOPE("train.epoch");
    if (config_.shuffle_each_epoch) rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t epoch_count = 0;
    std::size_t in_batch = 0;
    nn::zero_grads(params);
    for (std::size_t idx : order) {
      const auto& ex = examples[idx];
      if (ex.input.size() < 2) continue;
      sw.reset();
      tensor::Tensor* logits_ptr;
      {
        ODLP_TRACE_SCOPE("train.step.forward");
        logits_ptr = &model_.forward_shared(ex.input, /*training=*/true);
      }
      tensor::Tensor& logits = *logits_ptr;
      targets = ex.targets;
      targets.resize(logits.rows(), -1);  // forward may have truncated
      nn::cross_entropy_into(logits, targets, ce);
      h_fwd.record(sw.elapsed_seconds() * 1e6);
      if (ce.count == 0) continue;
      sw.reset();
      {
        ODLP_TRACE_SCOPE("train.step.backward");
        model_.backward(ce.dlogits);
      }
      h_bwd.record(sw.elapsed_seconds() * 1e6);
      epoch_loss += ce.loss;
      ++epoch_count;
      ++stats.sequences_processed;
      tokens += logits.rows();
      c_tokens.inc(logits.rows());
      if (++in_batch >= config_.batch_size) {
        optimizer_step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_step();
    const double mean_loss = epoch_count ? epoch_loss / epoch_count : 0.0;
    if (epoch == 0) stats.first_epoch_loss = mean_loss;
    stats.final_epoch_loss = mean_loss;
  }
  stats.wall_seconds = watch.elapsed_seconds();
  stats.seconds_per_epoch = stats.wall_seconds / static_cast<double>(config_.epochs);
  c_wall_us.inc(static_cast<std::uint64_t>(stats.wall_seconds * 1e6));
  g_sec_epoch.set(stats.seconds_per_epoch);
  if (stats.wall_seconds > 0.0) {
    g_tok_s.set(static_cast<double>(tokens) / stats.wall_seconds);
  }
  return stats;
}

}  // namespace odlp::llm
