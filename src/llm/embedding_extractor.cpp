#include "llm/embedding_extractor.h"

#include <cmath>

#include "tensor/ops.h"
#include "text/normalize.h"

namespace odlp::llm {

tensor::Tensor EmbeddingExtractor::token_embeddings(std::string_view textblock) {
  return token_embeddings(text::normalize_and_split(textblock));
}

tensor::Tensor EmbeddingExtractor::text_embedding(std::string_view textblock) {
  tensor::Tensor per_token = token_embeddings(textblock);
  if (per_token.rows() == 0) return tensor::Tensor(1, dim(), 0.0f);
  return tensor::mean_rows(per_token);
}

tensor::Tensor LlmEmbeddingExtractor::token_embeddings(
    const std::vector<std::string>& words) {
  // Same id sequence Tokenizer::encode (const) produces: one frozen-vocab
  // lookup per normalized word.
  std::vector<int> ids;
  ids.reserve(words.size());
  for (const auto& w : words) ids.push_back(tokenizer_.vocab().id(w));
  if (ids.empty()) ids.push_back(text::Vocab::kUnk);
  if (ids.size() > model_.config().max_seq_len) {
    ids.resize(model_.config().max_seq_len);
  }
  return model_.hidden_states(ids);
}

tensor::Tensor BagOfWordsExtractor::token_embeddings(
    const std::vector<std::string>& words) {
  const std::size_t T = words.empty() ? 1 : words.size();
  tensor::Tensor out(T, dim_, 0.0f);
  for (std::size_t t = 0; t < words.size(); ++t) {
    // Deterministic word hash expanded into a dense pseudo-embedding.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : words[t]) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    for (std::size_t j = 0; j < dim_; ++j) {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      // Map to [-1, 1].
      out.at(t, j) = static_cast<float>(static_cast<double>(h >> 11) * 0x1.0p-53) *
                         2.0f - 1.0f;
    }
  }
  return out;
}

}  // namespace odlp::llm
