// MiniLlm: a from-scratch decoder-only transformer language model.
//
// This is the library's stand-in for the paper's on-device Llama-3B
// (DESIGN.md §2): a real trainable causal LM with the same architectural
// skeleton (token+position embeddings, pre-LN blocks with multi-head causal
// attention and GELU MLPs, final LayerNorm, LM head) at a scale a CPU can
// fine-tune in seconds. LoRA attaches to the q/k/v/o projections exactly as
// the paper configures for Llama.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/norm.h"
#include "nn/linear.h"
#include "nn/param.h"
#include "nn/precision.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace odlp::llm {

struct ModelConfig {
  std::size_t vocab_size = 512;
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ff_hidden = 128;
  std::size_t max_seq_len = 96;
  // Llama-style RMSNorm instead of LayerNorm in every block and the final
  // normalization (changes the parameter set; checkpoints are not
  // interchangeable across this flag).
  bool use_rmsnorm = false;

  // FLOPs of one forward pass over a length-T sequence (approximate, used by
  // the device cost model).
  double forward_flops(std::size_t seq_len) const;
};

class MiniLlm {
 public:
  MiniLlm(const ModelConfig& config, std::uint64_t seed);

  // Forward pass over a token sequence (<= max_seq_len after truncation).
  // Returns logits [T, vocab]. Caches activations for backward().
  //
  // The _shared spelling returns a reference into the model-owned workspace:
  // zero-copy and allocation-free at steady state, but only valid until the
  // next forward/backward/incremental call on this model (each step resets
  // the arena). forward() wraps it and returns an owned copy.
  tensor::Tensor& forward_shared(const std::vector<int>& ids, bool training);
  tensor::Tensor forward(const std::vector<int>& ids, bool training);

  // Backprop from dLogits; accumulates gradients in all trainable params.
  // Resets the model workspace (forward's returned slot dies here); module
  // activation caches are member-owned, so they survive.
  void backward(const tensor::Tensor& dlogits);

  // KV-cached incremental decode of one token at `position` (0-based).
  // `caches` must hold one KvCache per block (see DecodeSession, which
  // manages them). Returns the token's logits [1, vocab] as a workspace
  // reference with the same lifetime rules as forward_shared. Inference only.
  tensor::Tensor& forward_incremental(int token, std::size_t position,
                                      std::vector<nn::KvCache>& caches);

  // Continuous-batched decode step over independent sessions: feeds
  // tokens[b] at positions[b] against caches[b] (session b's per-block
  // cache vector — ragged positions are fine, each session advances at its
  // own length). Returns logits [B, vocab] with forward_shared lifetime
  // rules. Row b is bit-identical to forward_incremental(tokens[b],
  // positions[b], *caches[b]) run alone: the shared GEMMs at m=B are
  // row-invariant, everything else is row-wise or per-session (DESIGN.md
  // §12). Inference only.
  //
  // `overlays` (optional, length B) carries per-row LoRA snapshots for
  // cross-tenant decode on a shared adapter-free base: row b's snapshot is
  // applied at every q/k/v/o site (site order = lora_linears()), making row
  // b bit-identical to decoding on a model with that user's adapters
  // attached. Null entries skip the overlay for that row; the model itself
  // must not have LoRA attached when overlays are passed.
  tensor::Tensor& forward_incremental_batch(
      const std::vector<int>& tokens, const std::vector<int>& positions,
      const std::vector<std::vector<nn::KvCache>*>& caches,
      const nn::LoraOverlaySet* const* overlays = nullptr);

  std::size_t num_blocks() const { return blocks_.size(); }

  // Hidden states of the last transformer block after the final LayerNorm,
  // [T, dim] — the paper's "last hidden layer" embedding source. Runs a fresh
  // inference forward pass, so it invalidates any pending backward().
  tensor::Tensor hidden_states(const std::vector<int>& ids);

  // LoRA lifecycle: attach freezes every base parameter and installs
  // adapters on q/k/v/o in every block (the paper's trainable set).
  void attach_lora(const nn::LoraConfig& config);
  void merge_lora();
  bool has_lora() const { return has_lora_; }

  // The LoRA-site Linears (every block's q/k/v/o projections, block-major),
  // in the site order LoraOverlaySet uses. Valid whether or not adapters
  // are currently attached — the fleet uses it both to snapshot/install
  // per-user adapters on attached worker models and to count sites on the
  // adapter-free shared decode model.
  std::vector<nn::Linear*> lora_linears();

  // Inference precision switch (nn/precision.h). kInt8 snapshots every base
  // weight — all Linears including the LM head, plus both embedding tables —
  // into per-block int8 copies that inference-time forwards (training=false)
  // run against; training forwards, backward, LoRA adapters, and norms stay
  // fp32. Idempotent; throws std::runtime_error when the backend was
  // compiled out (-DODLP_INT8=OFF).
  void set_inference_precision(nn::InferencePrecision precision);
  nn::InferencePrecision inference_precision() const { return precision_; }

  // Re-snapshots the int8 copies from the current fp32 weights; no-op at
  // fp32. load(), copy_parameters_from(), and merge (via Linear) already
  // call it — invoke manually only after mutating parameters directly
  // (e.g. a full-precision fine-tune without LoRA).
  void refresh_quantized_weights();

  // Inference-resident bytes under the active precision. Gradients and
  // optimizer state are excluded: an on-device inference deployment does
  // not carry them (the devicesim ledger adds KV-cache and buffer terms).
  struct WeightFootprint {
    std::size_t matmul_weight_bytes = 0;  // Linears incl. lm_head (+ biases)
    std::size_t embedding_bytes = 0;      // token + position tables
    std::size_t scale_bytes = 0;          // fp32 scale share of the above
    std::size_t norm_bytes = 0;           // norm gains/biases (always fp32)
    std::size_t lora_bytes = 0;           // adapters (always fp32)
    std::size_t total_bytes() const {
      return matmul_weight_bytes + embedding_bytes + norm_bytes + lora_bytes;
    }
  };
  WeightFootprint weight_footprint();

  nn::ParameterList parameters();
  std::size_t num_parameters();
  std::size_t num_trainable_parameters();

  // Copies every parameter value (and trainability flag) from `other`,
  // which must have the same architecture and LoRA state (identical
  // parameter names and shapes) — throws std::invalid_argument otherwise.
  // Used to build per-worker inference clones for parallel evaluation:
  // forward() mutates activation caches, so concurrent lanes must not
  // share one model instance.
  void copy_parameters_from(MiniLlm& other);

  const ModelConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }

  // Binary checkpoint of all parameter values (not optimizer state).
  // save() writes atomically with a CRC-32 footer; load() verifies it
  // (legacy pre-checksum files are accepted) and throws
  // util::CorruptionError on a damaged or mismatched file, leaving the
  // in-memory parameters untouched.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  ModelConfig config_;
  util::Rng rng_;
  // Scratch arena for every temporary of a forward/backward/decode step.
  // Owned by the model so per-lane clones are isolated by construction; at
  // steady state a whole training step makes zero heap allocations.
  tensor::Workspace ws_;
  nn::Embedding tok_emb_;
  nn::Embedding pos_emb_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  nn::Norm final_ln_;
  nn::Linear lm_head_;
  bool has_lora_ = false;
  nn::InferencePrecision precision_ = nn::InferencePrecision::kFp32;

  // Every Linear in forward order (block projections + FFNs, then lm_head).
  std::vector<nn::Linear*> all_linears();

  std::vector<int> cached_ids_;
  tensor::Tensor cached_final_hidden_;  // input to lm_head

  // Per-layer cache-pointer scratch for forward_incremental_batch; member
  // so steady-state decode steps stay allocation-free.
  std::vector<nn::KvCache*> layer_cache_scratch_;
};

}  // namespace odlp::llm
