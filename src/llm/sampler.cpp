#include "llm/sampler.h"

#include <algorithm>
#include <cmath>

#include "llm/decode_session.h"

namespace odlp::llm {

std::vector<int> Sampler::generate_ids(const std::vector<int>& prompt_ids) {
  if (config_.use_kv_cache) return generate_ids_cached(prompt_ids);
  std::vector<int> seq = prompt_ids;
  std::vector<int> generated;
  const std::size_t max_len = model_.config().max_seq_len;
  for (std::size_t step = 0; step < config_.max_new_tokens; ++step) {
    if (seq.size() >= max_len) break;
    tensor::Tensor logits = model_.forward(seq, /*training=*/false);
    const int next = sample_from_logits(logits.row(logits.rows() - 1),
                                        logits.cols(), config_, rng_);
    if (next == text::Vocab::kEos) break;
    seq.push_back(next);
    generated.push_back(next);
  }
  return generated;
}

std::vector<int> Sampler::generate_ids_cached(const std::vector<int>& prompt_ids) {
  std::vector<int> generated;
  if (prompt_ids.empty()) return generated;
  DecodeSession session(model_);
  std::vector<int> prompt = prompt_ids;
  if (prompt.size() > model_.config().max_seq_len) {
    prompt.resize(model_.config().max_seq_len);
  }
  tensor::Tensor logits = session.prime(prompt);
  for (std::size_t step = 0; step < config_.max_new_tokens; ++step) {
    if (session.full()) break;
    const int next =
        sample_from_logits(logits.row(0), logits.cols(), config_, rng_);
    if (next == text::Vocab::kEos) break;
    generated.push_back(next);
    if (session.full() || generated.size() >= config_.max_new_tokens) break;
    logits = session.step(next);
  }
  return generated;
}

std::string Sampler::respond(const text::Tokenizer& tokenizer,
                             std::string_view question) {
  const std::vector<int> prompt =
      tokenizer.encode_prompt(question, model_.config().max_seq_len / 2);
  return tokenizer.decode(generate_ids(prompt));
}

int sample_from_logits(const float* logits, std::size_t vocab,
                       const SamplerConfig& config, util::Rng& rng) {
  // Greedy when temperature is (near) zero.
  if (config.temperature < 1e-4f) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < vocab; ++j) {
      if (logits[j] > logits[best]) best = j;
    }
    return static_cast<int>(best);
  }

  std::vector<double> scaled(vocab);
  double mx = -1e30;
  for (std::size_t j = 0; j < vocab; ++j) {
    scaled[j] = static_cast<double>(logits[j]) / config.temperature;
    mx = std::max(mx, scaled[j]);
  }

  // Optional top-k: mask everything below the k-th largest logit.
  if (config.top_k > 0 && config.top_k < vocab) {
    std::vector<double> sorted = scaled;
    std::nth_element(sorted.begin(), sorted.begin() + (config.top_k - 1),
                     sorted.end(), std::greater<>());
    const double cutoff = sorted[config.top_k - 1];
    for (double& v : scaled) {
      if (v < cutoff) v = -1e30;
    }
  }

  std::vector<double> probs(vocab);
  double sum = 0.0;
  for (std::size_t j = 0; j < vocab; ++j) {
    probs[j] = std::exp(scaled[j] - mx);
    sum += probs[j];
  }

  // Nucleus (top-p) truncation: keep the smallest probability mass >= top_p,
  // zeroing the tail.
  if (config.top_p < 1.0f && config.top_p > 0.0f) {
    std::vector<std::size_t> order(vocab);
    for (std::size_t j = 0; j < vocab; ++j) order[j] = j;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
    const double target = static_cast<double>(config.top_p) * sum;
    double kept = 0.0;
    std::size_t cutoff = vocab;
    for (std::size_t rank = 0; rank < vocab; ++rank) {
      kept += probs[order[rank]];
      if (kept >= target) {
        cutoff = rank + 1;
        break;
      }
    }
    for (std::size_t rank = cutoff; rank < vocab; ++rank) {
      sum -= probs[order[rank]];
      probs[order[rank]] = 0.0;
    }
  }

  double r = rng.uniform() * sum;
  for (std::size_t j = 0; j < vocab; ++j) {
    r -= probs[j];
    if (r <= 0.0) return static_cast<int>(j);
  }
  return static_cast<int>(vocab - 1);
}

}  // namespace odlp::llm
