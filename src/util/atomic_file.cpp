#include "util/atomic_file.h"

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "util/fault.h"

namespace odlp::util {

namespace {

// fsync the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems refuse O_RDONLY directory fsync.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("atomic_file: cannot create " + tmp_path_);
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abort();
}

void AtomicFileWriter::write(const void* data, std::size_t len) {
  if (!file_) throw std::runtime_error("atomic_file: write after commit/abort");
  fault::on_write(path_);
  if (len > 0 && std::fwrite(data, 1, len, file_) != len) {
    throw std::runtime_error("atomic_file: short write to " + tmp_path_);
  }
  crc_.update(data, len);
  bytes_ += len;
}

void AtomicFileWriter::write_footer() {
  const std::uint32_t crc = crc_.value();
  write_pod<std::uint32_t>(kFooterMagic);
  write_pod<std::uint32_t>(crc);
}

void AtomicFileWriter::commit() {
  if (!file_) throw std::runtime_error("atomic_file: commit after commit/abort");
  bool ok = std::fflush(file_) == 0;
  if (ok) ok = ::fsync(::fileno(file_)) == 0;
  ok = (std::fclose(file_) == 0) && ok;
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("atomic_file: flush/fsync failed for " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("atomic_file: rename to " + path_ + " failed");
  }
  fsync_parent_dir(path_);
  committed_ = true;
  fault::on_commit(path_);
}

void AtomicFileWriter::abort() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) std::remove(tmp_path_.c_str());
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("atomic_file: cannot open " + path);
  std::vector<unsigned char> bytes;
  unsigned char chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("atomic_file: read error on " + path);
  return bytes;
}

std::size_t check_footer(const std::vector<unsigned char>& bytes,
                         const std::string& what) {
  if (bytes.size() < kFooterBytes) {
    throw CorruptionError(what + ": file too small for integrity footer");
  }
  const std::size_t payload = bytes.size() - kFooterBytes;
  std::uint32_t magic = 0, stored = 0;
  std::memcpy(&magic, bytes.data() + payload, sizeof(magic));
  std::memcpy(&stored, bytes.data() + payload + sizeof(magic), sizeof(stored));
  if (magic != kFooterMagic) {
    throw CorruptionError(what + ": missing integrity footer (truncated?)");
  }
  const std::uint32_t actual = crc32(bytes.data(), payload);
  if (stored != actual) {
    throw CorruptionError(what + ": CRC mismatch (corrupt file)");
  }
  return payload;
}

void ByteReader::read(void* out, std::size_t len) {
  if (len > remaining()) {
    throw CorruptionError(what_ + ": field of " + std::to_string(len) +
                          " bytes overruns remaining " +
                          std::to_string(remaining()) + " bytes");
  }
  std::memcpy(out, data_ + offset_, len);
  offset_ += len;
}

std::string ByteReader::str(std::size_t len) {
  if (len > remaining()) {
    throw CorruptionError(what_ + ": string of " + std::to_string(len) +
                          " bytes overruns remaining " +
                          std::to_string(remaining()) + " bytes");
  }
  std::string s(reinterpret_cast<const char*>(data_ + offset_), len);
  offset_ += len;
  return s;
}

}  // namespace odlp::util
