// Minimal command-line flag parser for the example/driver binaries.
//
// Supports "--name value" and "--name=value" forms plus bare boolean flags
// ("--verbose"). Unknown-flag detection is the caller's job via known().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace odlp::util {

class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& name) const;

  // Typed getters with defaults. Throw std::invalid_argument when the flag
  // is present but unparsable.
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Flags seen on the command line that are not in `allowed` (for
  // typo-friendly error messages).
  std::vector<std::string> unknown(const std::vector<std::string>& allowed) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name -> raw value ("" = bare)
  std::vector<std::string> positional_;
};

}  // namespace odlp::util
