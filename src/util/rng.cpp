#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace odlp::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return static_cast<std::size_t>(v % n);
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::size_t>(hi - lo) + 1;
  return lo + static_cast<int>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Guard against log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  // Floating-point slop: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace odlp::util
