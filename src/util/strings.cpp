#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace odlp::util {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace odlp::util
