// PCLMUL-folded CRC-32 kernel — the bit-reflected carry-less-multiply
// scheme from Intel's "Fast CRC Computation for Generic Polynomials Using
// PCLMULQDQ" white paper, as popularized by zlib's SIMD path. Four 128-bit
// lanes fold 64 input bytes per iteration, then the lanes collapse via
// 128->64-bit folds and a Barrett reduction back to the 32-bit state.
//
// This TU is compiled with -msse4.1 -mpclmul and is only ever called after
// a cpuid probe (util/crc32.cpp) — the same own-TU + runtime-dispatch
// pattern as the AVX2/VNNI tensor kernels. It produces bit-identical
// digests to the slice-by-8 table path for every input.
#ifdef ODLP_HAVE_PCLMUL

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace odlp::util::detail {

// Preconditions (enforced by the caller): len >= 64 and len % 16 == 0.
// `crc` is the raw running state (already conditioned with ^0xFFFFFFFF);
// the returned state continues through the table path for any tail bytes.
std::uint32_t crc32_clmul_fold(const unsigned char* buf, std::size_t len,
                               std::uint32_t crc) {
  // Bit-reflected domain constants for P(x) = 0x104C11DB7:
  //   k1 = x^(4*128+32) mod P, k2 = x^(4*128-32) mod P  (512-bit fold)
  //   k3 = x^(128+32)   mod P, k4 = x^(128-32)  mod P  (128-bit fold)
  //   k5 = x^96         mod P                          (128->64 fold)
  //   poly[] holds P' and the Barrett constant mu.
  alignas(16) static const std::uint64_t k1k2[2] = {0x0154442bd4,
                                                    0x01c6e41596};
  alignas(16) static const std::uint64_t k3k4[2] = {0x01751997d0,
                                                    0x00ccaa009e};
  alignas(16) static const std::uint64_t k5k0[2] = {0x0163cd6124,
                                                    0x0000000000};
  alignas(16) static const std::uint64_t poly[2] = {0x01db710641,
                                                    0x01f7011641};

  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  // First block of 64: seed lane 0 with the incoming state.
  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  // Parallel fold: each lane advances 512 bits per iteration.
  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Collapse the four lanes into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Single fold over any remaining 16-byte blocks.
  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // Fold 128 bits down to 64.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction 64 -> 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace odlp::util::detail

#endif  // ODLP_HAVE_PCLMUL
