// Minimal leveled logging. Experiments print their artifacts (tables/series)
// via util::Table directly on stdout; logging is for progress and warnings.
#pragma once

#include <string>

namespace odlp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Core sink: writes "[LEVEL] message" to stderr if enabled.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace odlp::util
