// Minimal leveled logging. Experiments print their artifacts (tables/series)
// via util::Table directly on stdout; logging is for progress and warnings.
//
// Each line is "2026-08-06T12:34:56.789Z [LEVEL] [tid N] message". Lines
// are formatted into a buffer and written with a single locked fwrite, so
// concurrent log() calls from pool workers never interleave mid-line.
//
// The initial threshold comes from the ODLP_LOG_LEVEL environment variable
// (debug|info|warn|error|off, parsed once at startup; default info);
// set_log_level() overrides it at runtime.
#pragma once

#include <string>

namespace odlp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Default: ODLP_LOG_LEVEL
// when set and valid, else kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Core sink: writes one timestamped line to stderr if enabled.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace odlp::util
