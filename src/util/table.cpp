#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace odlp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format("%.*f", precision, value));
}

Table& Table::cell(long long value) {
  return cell(format("%lld", value));
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << v << std::string(widths[c] - std::min(widths[c], v.size()), ' ');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

Series::Series(std::string name, std::string x_label, std::string y_label)
    : name_(std::move(name)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void Series::add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
}

std::string Series::to_string(int precision) const {
  std::ostringstream os;
  os << "# series: " << name_ << '\n';
  Table t({x_label_, y_label_});
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    t.row().cell(xs_[i], precision).cell(ys_[i], precision);
  }
  os << t.to_string();
  return os.str();
}

}  // namespace odlp::util
