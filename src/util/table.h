// Console table / series printers used by the benchmark harness to emit the
// paper's tables and figure series in a uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace odlp::util {

// A simple column-aligned text table. Cells are strings; numeric helpers are
// provided for the common "metric with fixed precision" case.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Start a new row. Subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 4);
  Table& cell(long long value);

  // Render with aligned columns, a header underline, and a trailing newline.
  std::string to_string() const;

  // Render as comma-separated values (for piping into plotting scripts).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  // Access a finished cell (row-major). Throws std::out_of_range if absent.
  const std::string& at(std::size_t row, std::size_t col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// A named (x, y) series, for figure reproduction. Printed as aligned columns.
class Series {
 public:
  Series(std::string name, std::string x_label, std::string y_label);

  void add(double x, double y);
  const std::string& name() const { return name_; }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  std::string to_string(int precision = 4) const;

 private:
  std::string name_;
  std::string x_label_;
  std::string y_label_;
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace odlp::util
