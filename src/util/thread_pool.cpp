#include "util/thread_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "util/log.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace odlp::util {

namespace {

// True while the current thread is executing chunks of a parallel region
// (worker lane or the submitting thread). Nested regions run inline.
thread_local bool tl_inside_region = false;

constexpr std::size_t kMaxLanes = 64;

// Pool telemetry. Queue depth is the number of unclaimed chunks in the
// in-flight region; per-lane busy counters expose utilization skew across
// workers (lane 0 is the submitting thread).
struct PoolMetrics {
  obs::Gauge& queue_depth = obs::registry().gauge("pool.queue.depth");
  obs::Counter& regions = obs::registry().counter("pool.regions.total");
  obs::Histogram& chunk_us = obs::registry().histogram("pool.chunk_us");

  obs::Counter& lane_busy(std::size_t lane) {
    static std::array<obs::Counter*, kMaxLanes> lanes = [] {
      std::array<obs::Counter*, kMaxLanes> a{};
      for (std::size_t i = 0; i < kMaxLanes; ++i) {
        a[i] = &obs::registry().counter("pool.lane" + std::to_string(i) +
                                        ".busy_us");
      }
      return a;
    }();
    return *lanes[lane < kMaxLanes ? lane : kMaxLanes - 1];
  }

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
      nullptr;
  std::size_t range_end = 0;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};

  std::mutex error_mutex;
  std::exception_ptr error;
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;
  std::condition_variable done;
  Job* job = nullptr;
  std::uint64_t job_seq = 0;
  std::size_t workers_in_job = 0;
  bool stop = false;
  std::vector<std::thread> workers;
  // Detached one-shot tasks (submit()). Workers drain this queue whenever
  // they are not claiming region chunks; resize()/~ThreadPool drain any
  // leftovers inline after joining, so every task runs exactly once.
  std::deque<std::function<void()>> tasks;

  // Runs one detached task with nested parallel regions inlined and
  // exceptions contained (submit()'s contract is fire-and-forget).
  static void run_task(std::function<void()>& task) {
    const bool was_inside = tl_inside_region;
    tl_inside_region = true;
    try {
      task();
    } catch (const std::exception& e) {
      log_warn(std::string("thread_pool: async task threw: ") + e.what());
    } catch (...) {
      log_warn("thread_pool: async task threw a non-std exception");
    }
    tl_inside_region = was_inside;
  }

  // Claims and runs chunks of `job` until exhausted. `lane` identifies the
  // executing lane for slotted bodies.
  void run_chunks(Job& job_ref, std::size_t lane) {
    PoolMetrics& pm = PoolMetrics::get();
    obs::Counter& busy = pm.lane_busy(lane);
    tl_inside_region = true;
    std::uint64_t busy_us = 0;
    while (true) {
      const std::size_t c = job_ref.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_ref.num_chunks) break;
      const std::size_t b = job_ref.begin + c * job_ref.grain;
      const std::size_t e = std::min(job_ref.range_end, b + job_ref.grain);
      Stopwatch sw;
      try {
        (*job_ref.body)(b, e, lane);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job_ref.error_mutex);
        if (!job_ref.error) job_ref.error = std::current_exception();
      }
      const double us = sw.elapsed_seconds() * 1e6;
      pm.chunk_us.record(us);
      busy_us += static_cast<std::uint64_t>(us);
      const std::size_t done_chunks =
          job_ref.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      pm.queue_depth.set(static_cast<double>(
          job_ref.num_chunks - std::min(done_chunks, job_ref.num_chunks)));
    }
    if (busy_us > 0) busy.inc(busy_us);
    tl_inside_region = false;
  }

  void worker_loop(std::size_t lane) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex);
    while (true) {
      wake.wait(lk,
                [&] { return stop || job_seq != seen || !tasks.empty(); });
      if (stop) return;  // leftover tasks drain inline in resize()/dtor
      if (!tasks.empty()) {
        std::function<void()> task = std::move(tasks.front());
        tasks.pop_front();
        lk.unlock();
        run_task(task);
        lk.lock();
        continue;
      }
      seen = job_seq;
      Job* j = job;
      if (!j) continue;  // region already retired before this lane woke
      ++workers_in_job;
      lk.unlock();
      run_chunks(*j, lane);
      lk.lock();
      --workers_in_job;
      done.notify_all();
    }
  }

  // Joins every worker, then runs any still-queued detached tasks on the
  // calling thread so submitters waiting on task-side completion signals
  // are never stranded.
  void shutdown_workers() {
    {
      std::lock_guard<std::mutex> lk(mutex);
      stop = true;
    }
    wake.notify_all();
    for (auto& t : workers) t.join();
    workers.clear();
    std::deque<std::function<void()>> leftovers;
    {
      std::lock_guard<std::mutex> lk(mutex);
      leftovers.swap(tasks);
    }
    for (auto& task : leftovers) run_task(task);
  }
};

ThreadPool::ThreadPool(std::size_t lanes) : impl_(new Impl) {
  resize(lanes == 0 ? configured_lanes() : lanes);
}

ThreadPool::~ThreadPool() {
  impl_->shutdown_workers();
  delete impl_;
}

void ThreadPool::resize(std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  if (lanes > kMaxLanes) lanes = kMaxLanes;
  impl_->shutdown_workers();
  impl_->stop = false;
  lanes_ = lanes;
  impl_->workers.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    impl_->workers.emplace_back([this, lane] { impl_->worker_loop(lane); });
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::configured_lanes() {
  if (const char* env = std::getenv("ODLP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxLanes);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxLanes);
}

void ThreadPool::run_region(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk) {
  if (end <= begin) return;
  const std::size_t range = end - begin;
  if (grain == 0) {
    // ~4 chunks per lane for dynamic load balancing. Only legal where chunk
    // writes are disjoint (reduce_ordered always passes an explicit grain).
    grain = (range + lanes_ * 4 - 1) / (lanes_ * 4);
    if (grain == 0) grain = 1;
  }
  const std::size_t num_chunks = (range + grain - 1) / grain;

  // Serial / inline paths: single-lane pool, a single chunk, or a nested
  // region on a thread already executing chunks (avoids deadlock).
  if (lanes_ == 1 || num_chunks == 1 || tl_inside_region) {
    const bool was_inside = tl_inside_region;
    tl_inside_region = true;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t b = begin + c * grain;
      const std::size_t e = std::min(end, b + grain);
      chunk(b, e, 0);
    }
    tl_inside_region = was_inside;
    return;
  }

  ODLP_TRACE_SCOPE("pool.region");
  PoolMetrics& pm = PoolMetrics::get();
  pm.regions.inc();
  pm.queue_depth.set(static_cast<double>(num_chunks));

  Job job;
  job.begin = begin;
  job.range_end = end;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.body = &chunk;

  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->job = &job;
    ++impl_->job_seq;
  }
  impl_->wake.notify_all();

  impl_->run_chunks(job, /*lane=*/0);

  // Retire the region only once every chunk ran AND every worker that
  // entered it has left — a late worker may still hold the Job pointer
  // briefly after the final chunk completes.
  {
    std::unique_lock<std::mutex> lk(impl_->mutex);
    impl_->done.wait(lk, [&] {
      return job.completed.load(std::memory_order_acquire) == job.num_chunks &&
             impl_->workers_in_job == 0;
    });
    impl_->job = nullptr;
  }
  pm.queue_depth.set(0.0);
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk) {
  run_region(begin, end, grain,
             [&chunk](std::size_t b, std::size_t e, std::size_t) { chunk(b, e); });
}

void ThreadPool::parallel_for_slotted(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk) {
  run_region(begin, end, grain, chunk);
}

void ThreadPool::submit(std::function<void()> task) {
  if (lanes_ == 1) {
    // No workers: a 1-lane pool is exactly the serial code path.
    Impl::run_task(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->tasks.push_back(std::move(task));
  }
  impl_->wake.notify_one();
}

}  // namespace odlp::util
