#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace odlp::util {

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table for the
// reflected polynomial 0xEDB88320; table[k][b] extends a CRC by byte b
// followed by k zero bytes. Processing 8 input bytes per iteration breaks
// the 1-byte-per-step dependency chain of the naive loop (each table lookup
// is independent), which is what makes this ~5-8x faster at identical
// digests — the CRC of every prefix is unchanged, so chaining via `seed`
// still composes exactly as before.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

Tables make_tables() {
  Tables tb;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = tb.t[0][c & 0xFFu] ^ (c >> 8);
      tb.t[s][i] = c;
    }
  }
  return tb;
}

const Tables& tables() {
  static const Tables tb = make_tables();
  return tb;
}

}  // namespace

#ifdef ODLP_HAVE_PCLMUL
namespace detail {
// util/crc32_clmul.cpp — PCLMUL folding kernel, own -mpclmul TU.
std::uint32_t crc32_clmul_fold(const unsigned char* buf, std::size_t len,
                               std::uint32_t crc);
}  // namespace detail

namespace {
bool clmul_available() {
  static const bool ok = __builtin_cpu_supports("pclmul") &&
                         __builtin_cpu_supports("sse4.1");
  return ok;
}
}  // namespace
#endif

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;

#ifdef ODLP_HAVE_PCLMUL
  // Bulk: carry-less-multiply folding (runtime-dispatched after a cpuid
  // probe, like the tensor kernels). Consumes a 16-byte-granular prefix of
  // at least 64 bytes; the table path below finishes the tail. Digests are
  // bit-identical to the pure table path.
  if (len >= 64 && clmul_available()) {
    const std::size_t chunk = len & ~static_cast<std::size_t>(15);
    c = detail::crc32_clmul_fold(p, chunk, c);
    p += chunk;
    len -= chunk;
  }
#endif

  // Head: align to 8 bytes so the wide loop's memcpy loads are aligned.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --len;
  }

  // Body: 8 bytes per iteration. The first word is folded into the running
  // CRC, the second is independent; both resolve through the precomputed
  // zero-extension tables. The word loads assume little-endian lane order;
  // big-endian hosts take the (correct, slower) bytewise tail loop instead.
  while (std::endian::native == std::endian::little && len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
        tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][(lo >> 24) & 0xFFu] ^
        tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
        tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][(hi >> 24) & 0xFFu];
    p += 8;
    len -= 8;
  }

  // Tail.
  while (len > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --len;
  }
  return c ^ 0xFFFFFFFFu;
}

void Crc32::update(const void* data, std::size_t len) {
  value_ = crc32(data, len, value_);
}

}  // namespace odlp::util
