#include "util/crc32.h"

#include <array>

namespace odlp::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& t = table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Crc32::update(const void* data, std::size_t len) {
  value_ = crc32(data, len, value_);
}

}  // namespace odlp::util
