// Deterministic fault injection for storage, memory, and task execution.
//
// Edge deployments lose power mid-write, suffer flash bit rot, run out of
// memory, and stall on slow media; tests, the chaos suite, and
// bench_robustness need to script those failures reproducibly. Two layers:
//
//   * FaultPlan (legacy, file-I/O only): a single armed plan consulted by
//     util::AtomicFileWriter on every write and commit, so a test can say
//     "the 3rd write of the model file fails" or "the committed buffer file
//     loses its last 10 bytes" and assert that recovery does the right
//     thing.
//   * FaultSchedule (chaos harness): a seeded list of FaultEvents spanning
//     write failures, post-commit corruption, slow-I/O stalls, allocation
//     failures, and task-level faults. Hooks at allocation-heavy and
//     round-level call sites (DataBuffer admission, engine rounds,
//     checkpoint saves) consult the armed schedule; events fire on the
//     N-th matching observation, once (transient) or persistently.
//
// Thread safety: the armed/disarmed flags and hit counters are relaxed
// atomics, and plan/schedule state is mutex-guarded while armed, so chaos
// scenarios run TSan-clean alongside the ThreadPool. The fast path when
// nothing is armed is two relaxed loads.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace odlp::util::fault {

// Thrown by on_write() when the armed plan/schedule says this write call
// dies — simulates power loss mid-write (the destination file is never
// replaced).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by on_alloc() when the armed schedule fails this allocation —
// simulates memory exhaustion. A distinct type so supervisors and retry
// policies can treat resource pressure separately from I/O power loss.
class InjectedOom : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by on_task() when the armed schedule poisons this task — simulates
// a malformed round step (poisoned stream element, wedged fine-tune).
class InjectedTaskFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  // Only paths containing this substring are faulted ("" = every path).
  std::string path_substring;
  // 0-based index (among matching write calls since arm()) of the write
  // that throws InjectedFault; -1 = never.
  long long fail_on_write = -1;
  // After a matching commit(): truncate the committed file to this many
  // bytes; -1 = off. Simulates a torn sector persisted across power loss.
  long long truncate_at = -1;
  // After a matching commit(): flip bit (flip_bit % 8) of byte
  // (flip_bit / 8) in the committed file; -1 = off. Simulates bit rot.
  long long flip_bit = -1;
};

void arm(const FaultPlan& plan);
void disarm();
bool armed();

// Matching write calls observed since the last arm() (diagnostics: lets a
// test first count writes, then target each one in turn).
std::uint64_t writes_observed();

// RAII arm/disarm for test scopes.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { arm(plan); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

// ---------------------------------------------------------------------------
// Seeded chaos schedule
// ---------------------------------------------------------------------------

enum class FaultKind {
  kWriteFail,  // on_write throws InjectedFault (power loss mid-write)
  kTruncate,   // on_commit truncates the committed file to `param` bytes
  kBitFlip,    // on_commit flips bit `param` of the committed file
  kSlowIo,     // on_write stalls `param` microseconds (slow flash / fsync)
  kAllocFail,  // on_alloc throws InjectedOom
  kTaskFail,   // on_task throws InjectedTaskFault
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kWriteFail;
  // Substring the hook argument (path, allocation site, or task name) must
  // contain for this event to observe the call ("" = every call).
  std::string match;
  // 0-based index, among this event's matching observations since
  // arm_schedule(), on which the event fires.
  std::uint64_t at = 0;
  // kTruncate: byte length; kBitFlip: bit index; kSlowIo: stall µs.
  std::uint64_t param = 0;
  // true: fires exactly once, then disarms (a transient fault that heals on
  // retry). false: fires on every matching observation with index >= at (a
  // persistent fault that must surface as a terminal error).
  bool once = true;
};

struct FaultSchedule {
  std::uint64_t seed = 0;  // provenance only; events are already materialized
  std::vector<FaultEvent> events;
  // Scales the actual kSlowIo nap (the stall is still counted in
  // ScheduleStats either way). Sweeps that replay thousands of stalls set
  // this near 0 to account the slow I/O without serving the full sleep —
  // the stall analogue of RetryConfig::sleep = false.
  double stall_scale = 1.0;

  // Deterministic pseudo-random schedule: `num_events` events drawn across
  // all fault kinds, with match targets, trigger indices in [0, horizon),
  // corruption offsets, stall durations, and a small persistent-fault
  // minority, all derived from `seed`. Equal seeds build equal schedules.
  static FaultSchedule random(std::uint64_t seed, std::size_t num_events,
                              std::uint64_t horizon = 48);
};

void arm_schedule(const FaultSchedule& schedule);
void disarm_schedule();
bool schedule_armed();

// Observation and injection totals since the last arm_schedule().
struct ScheduleStats {
  std::uint64_t writes_seen = 0;
  std::uint64_t commits_seen = 0;
  std::uint64_t allocs_seen = 0;
  std::uint64_t tasks_seen = 0;
  std::uint64_t write_fails = 0;
  std::uint64_t truncations = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t stalls = 0;
  std::uint64_t oom = 0;
  std::uint64_t task_fails = 0;

  std::uint64_t total_injected() const {
    return write_fails + truncations + bit_flips + stalls + oom + task_fails;
  }
};
ScheduleStats schedule_stats();

class ScopedSchedule {
 public:
  explicit ScopedSchedule(const FaultSchedule& schedule) {
    arm_schedule(schedule);
  }
  ~ScopedSchedule() { disarm_schedule(); }
  ScopedSchedule(const ScopedSchedule&) = delete;
  ScopedSchedule& operator=(const ScopedSchedule&) = delete;
};

// --- hooks called by the storage / engine / buffer layers ---

// Before each buffered write to `path`; throws InjectedFault when the armed
// plan or schedule kills this write, after applying any scheduled stall.
void on_write(const std::string& path);

// After `path` has been atomically committed; applies truncate/bit-flip
// corruption from the armed plan or schedule to the final file.
void on_commit(const std::string& path);

// At allocation-heavy sites (buffer admission, fine-tune batch assembly).
// Throws InjectedOom when the armed schedule fails this allocation.
void on_alloc(const std::string& site, std::size_t bytes = 0);

// At task boundaries (engine stream step, fine-tune round, checkpoint
// save). Throws InjectedTaskFault when the armed schedule poisons the task.
void on_task(const std::string& task);

}  // namespace odlp::util::fault
