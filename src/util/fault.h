// Deterministic fault injection for the durable-storage layer.
//
// Edge deployments lose power mid-write and suffer flash bit rot; tests and
// bench_robustness need to script those failures reproducibly. A FaultPlan
// armed here is consulted by util::AtomicFileWriter on every write and
// commit, so a single test can say "the 3rd write of the model file fails"
// or "the committed buffer file loses its last 10 bytes" and then assert
// that recovery does the right thing.
//
// The hooks are process-global and not thread-safe by design: fault
// scenarios are scripted from single-threaded tests/examples.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace odlp::util::fault {

// Thrown by on_write() when the armed plan says this write call dies —
// simulates power loss mid-write (the destination file is never replaced).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  // Only paths containing this substring are faulted ("" = every path).
  std::string path_substring;
  // 0-based index (among matching write calls since arm()) of the write
  // that throws InjectedFault; -1 = never.
  long long fail_on_write = -1;
  // After a matching commit(): truncate the committed file to this many
  // bytes; -1 = off. Simulates a torn sector persisted across power loss.
  long long truncate_at = -1;
  // After a matching commit(): flip bit (flip_bit % 8) of byte
  // (flip_bit / 8) in the committed file; -1 = off. Simulates bit rot.
  long long flip_bit = -1;
};

void arm(const FaultPlan& plan);
void disarm();
bool armed();

// Matching write calls observed since the last arm() (diagnostics: lets a
// test first count writes, then target each one in turn).
std::uint64_t writes_observed();

// RAII arm/disarm for test scopes.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { arm(plan); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

// --- hooks called by the atomic-file layer ---

// Before each buffered write to `path`; throws InjectedFault when armed for
// this call.
void on_write(const std::string& path);

// After `path` has been atomically committed; applies truncate_at /
// flip_bit corruption to the final file.
void on_commit(const std::string& path);

}  // namespace odlp::util::fault
