#include "util/args.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace odlp::util {

Args::Args(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // bare boolean flag
    }
  }
}

bool Args::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& name, long long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second);
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + " expects a boolean, got '" +
                              it->second + "'");
}

std::vector<std::string> Args::unknown(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace odlp::util
