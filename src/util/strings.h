// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace odlp::util {

// Split on any run of characters from `delims`; empty pieces are dropped.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t\r\n");

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy.
std::string to_lower(std::string_view s);

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace odlp::util
