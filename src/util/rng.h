// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (data generation, stream
// shuffling, dropout, sampling, tie-breaking in the replacement policy) draw
// from an explicitly seeded Rng instance that is threaded through the code;
// nothing uses global random state. This makes every experiment bit-for-bit
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace odlp::util {

// xoshiro256** with a splitmix64 seeder. Small, fast, and high quality;
// good enough for simulation workloads (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  // Standard normal via Box-Muller.
  double normal();

  // Normal with mean / stddev.
  double normal(double mean, double stddev);

  // Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  // Sample an index from an unnormalized non-negative weight vector.
  // Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Derive an independent child generator; used to give each subsystem its
  // own stream so adding randomness in one place does not perturb another.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace odlp::util
