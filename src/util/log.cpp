#include "util/log.h"

#include <cstdio>

namespace odlp::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace odlp::util
