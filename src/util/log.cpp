#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace odlp::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// ODLP_LOG_LEVEL is parsed exactly once, at static initialization;
// set_log_level() overrides it afterwards.
LogLevel level_from_env() {
  const char* env = std::getenv("ODLP_LOG_LEVEL");
  if (!env) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;  // unknown value: fall back silently
}

std::atomic<LogLevel> g_level{level_from_env()};

// Small dense ids (1, 2, ...) are easier to read than pthread handles and
// match the spirit of the trace exporter's tids (assigned independently).
int this_thread_log_id() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::kOff) return;

  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &ts.tv_sec);
#else
  gmtime_r(&ts.tv_sec, &tm);
#endif
  char head[96];
  std::snprintf(head, sizeof(head),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ [%s] [tid %d] ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000L,
                level_name(level), this_thread_log_id());

  // One pre-formatted buffer, one locked fwrite: a single fprintf with
  // multiple conversions is not guaranteed atomic across platforms, so
  // concurrent lines could interleave mid-line without this.
  std::string line;
  line.reserve(std::strlen(head) + message.size() + 1);
  line += head;
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lk(sink_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace odlp::util
