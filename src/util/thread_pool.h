// Shared parallel compute runtime for the hot paths (tensor kernels,
// selection scoring, evaluation).
//
// Design goals, in order:
//   1. Determinism. Results must be bit-identical run-to-run AND across
//      worker counts. parallel_for chunks carry disjoint writes, so any
//      schedule yields the same bytes; reduce_ordered decomposes the range
//      by grain size alone (never by worker count) and combines the chunk
//      partials strictly in chunk order.
//   2. Fixed worker pool. Threads are spawned once and reused; a
//      parallel_for is one mutex round-trip + atomic chunk claiming, cheap
//      enough for per-sequence kernels. The calling thread always
//      participates, so a 1-lane pool is exactly the serial code path.
//   3. Graceful degradation. Nested parallel_for calls (a parallel region
//      invoked from inside a worker) execute inline on the calling lane,
//      never deadlock. Exceptions thrown by chunk bodies are captured and
//      rethrown on the submitting thread after the region completes.
//
// The global pool is sized from the ODLP_THREADS environment variable when
// set (clamped to [1, 64]), else std::thread::hardware_concurrency().
// Benches resize it between measurements via resize(); resize is not safe
// concurrently with an in-flight parallel region.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace odlp::util {

class ThreadPool {
 public:
  // `lanes` counts execution lanes *including the calling thread*; a pool
  // with N lanes owns N-1 worker threads. 0 = auto (configured_lanes()).
  explicit ThreadPool(std::size_t lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  // Joins all workers and respawns with the new lane count. Must not be
  // called while a parallel region is running.
  void resize(std::size_t lanes);

  // Process-wide pool shared by all kernels. Constructed on first use.
  static ThreadPool& global();

  // Lane count the global pool starts with: ODLP_THREADS when set and
  // valid, else hardware_concurrency (minimum 1).
  static std::size_t configured_lanes();

  // Splits [begin, end) into chunks of at most `grain` items and runs
  // `chunk(chunk_begin, chunk_end)` across the lanes. grain == 0 picks an
  // automatic grain (~4 chunks per lane). Writes inside chunks must be
  // disjoint; under that contract results are schedule-independent.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& chunk);

  // Same, but the body also receives the executing lane id in [0, lanes()).
  // A lane runs at most one chunk at a time, so lane-indexed scratch (e.g.
  // per-worker model clones) needs no further synchronization.
  void parallel_for_slotted(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk);

  // Fire-and-forget asynchronous task on an idle worker lane — the io
  // BlockWriter uses this to compress and flush block N while the caller
  // fills block N+1. The task must not throw (exceptions are caught and
  // logged; completion signalling is the submitter's job — e.g. a cv the
  // task notifies). Tasks run with nested parallel regions inlined, so a
  // task may itself call parallel_for without deadlocking. On a 1-lane pool
  // submit() executes the task inline before returning, preserving the
  // "1-lane pool == serial code path" contract. resize() and the destructor
  // drain queued tasks on the calling thread before the pool goes down, so
  // a submitted task always runs exactly once.
  void submit(std::function<void()> task);

  // Deterministic ordered reduction: maps each chunk of [begin, end) to a
  // partial value, then combines the partials sequentially in ascending
  // chunk order on the calling thread. The chunk decomposition depends only
  // on `grain` (0 = kDefaultReduceGrain), never on the lane count, so the
  // result is bit-identical for any pool size.
  template <typename T>
  T reduce_ordered(std::size_t begin, std::size_t end, std::size_t grain,
                   T identity,
                   const std::function<T(std::size_t, std::size_t)>& map,
                   const std::function<T(const T&, const T&)>& combine) {
    if (grain == 0) grain = kDefaultReduceGrain;
    if (end <= begin) return identity;
    const std::size_t chunks = (end - begin + grain - 1) / grain;
    std::vector<T> partials(chunks, identity);
    parallel_for(begin, end, grain,
                 [&](std::size_t b, std::size_t e) {
                   partials[(b - begin) / grain] = map(b, e);
                 });
    T acc = identity;
    for (std::size_t c = 0; c < chunks; ++c) acc = combine(acc, partials[c]);
    return acc;
  }

  // Fixed grain used by reduce_ordered when the caller passes 0; part of
  // the determinism contract (documented in DESIGN.md §8).
  static constexpr std::size_t kDefaultReduceGrain = 32;

 private:
  struct Job;
  struct Impl;

  void run_region(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk);

  std::size_t lanes_ = 1;
  Impl* impl_ = nullptr;  // owned; raw pointer keeps <thread> out of the header
};

}  // namespace odlp::util
