#include "util/fault.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "util/log.h"
#include "util/rng.h"

namespace odlp::util::fault {

namespace {

// Fast-path flags: hooks bail on two relaxed loads when nothing is armed.
std::atomic<bool> g_armed{false};
std::atomic<bool> g_sched_armed{false};

// Hit counter for the legacy plan; relaxed atomic so writes_observed() never
// races a concurrent hook.
std::atomic<std::uint64_t> g_writes{0};

// Everything below is guarded by g_mu while the corresponding layer is
// armed. The hooks take the lock only after the fast-path flag check.
std::mutex g_mu;
FaultPlan g_plan;

struct ArmedSchedule {
  std::vector<FaultEvent> events;
  std::vector<std::uint64_t> hits;  // matching observations per event
  std::vector<bool> fired;          // once-events that already fired
  double stall_scale = 1.0;
  ScheduleStats stats;
};
ArmedSchedule g_sched;

bool plan_matches(const std::string& path) {
  return g_plan.path_substring.empty() ||
         path.find(g_plan.path_substring) != std::string::npos;
}

bool event_matches(const FaultEvent& e, const std::string& subject) {
  return e.match.empty() || subject.find(e.match) != std::string::npos;
}

// Walks the armed schedule for one observation of `subject` in the hook
// category accepting `kind_a`/`kind_b`; returns the kinds that fired plus
// their params. Must be called with g_mu held.
struct FiredAction {
  FaultKind kind;
  std::uint64_t param;
};
std::vector<FiredAction> observe_locked(const std::string& subject,
                                        FaultKind kind_a, FaultKind kind_b) {
  std::vector<FiredAction> fired;
  for (std::size_t i = 0; i < g_sched.events.size(); ++i) {
    FaultEvent& e = g_sched.events[i];
    if (e.kind != kind_a && e.kind != kind_b) continue;
    if (!event_matches(e, subject)) continue;
    const std::uint64_t index = g_sched.hits[i]++;
    if (g_sched.fired[i]) continue;
    const bool fire = e.once ? (index == e.at) : (index >= e.at);
    if (!fire) continue;
    if (e.once) g_sched.fired[i] = true;
    fired.push_back({e.kind, e.param});
  }
  return fired;
}

void corrupt_file(const std::string& path, long long truncate_at,
                  long long flip_bit) {
  if (truncate_at >= 0) {
    if (truncate(path.c_str(), static_cast<off_t>(truncate_at)) != 0) {
      log_warn("fault: truncate of " + path + " failed");
    }
  }
  if (flip_bit >= 0) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (!f) {
      log_warn("fault: cannot reopen " + path + " for bit flip");
      return;
    }
    const long byte = static_cast<long>(flip_bit / 8);
    const int bit = static_cast<int>(flip_bit % 8);
    unsigned char c = 0;
    if (std::fseek(f, byte, SEEK_SET) == 0 && std::fread(&c, 1, 1, f) == 1) {
      c = static_cast<unsigned char>(c ^ (1u << bit));
      std::fseek(f, byte, SEEK_SET);
      std::fwrite(&c, 1, 1, f);
    } else {
      log_warn("fault: bit-flip offset past end of " + path);
    }
    std::fclose(f);
  }
}

}  // namespace

void arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = plan;
  g_writes.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.store(false, std::memory_order_relaxed);
  g_writes.store(0, std::memory_order_relaxed);
  g_plan = FaultPlan{};
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

std::uint64_t writes_observed() {
  return g_writes.load(std::memory_order_relaxed);
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWriteFail:
      return "write_fail";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kSlowIo:
      return "slow_io";
    case FaultKind::kAllocFail:
      return "alloc_fail";
    case FaultKind::kTaskFail:
      return "task_fail";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::random(std::uint64_t seed, std::size_t num_events,
                                    std::uint64_t horizon) {
  // Targets that actually occur in a personalization round: checkpoint
  // component files for the I/O kinds, engine round steps for task faults,
  // and buffer/fine-tune assembly for allocation faults.
  static const char* const kWriteTargets[] = {"",          "model.bin",
                                              "buffer.bin", "stats.bin",
                                              "metrics.bin", "MANIFEST"};
  static const char* const kTaskTargets[] = {"engine.process",
                                             "engine.finetune", "ckpt.save"};
  static const char* const kAllocTargets[] = {"", "buffer", "examples"};

  FaultSchedule schedule;
  schedule.seed = seed;
  // Decorrelate from other seed consumers without losing determinism.
  util::Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC4A05ull);
  schedule.events.reserve(num_events);
  for (std::size_t i = 0; i < num_events; ++i) {
    FaultEvent e;
    const std::size_t kind = rng.uniform_index(6);
    e.kind = static_cast<FaultKind>(kind);
    e.at = rng.next_u64() % (horizon == 0 ? 1 : horizon);
    // A small persistent minority: these must surface as terminal errors
    // (retry exhaustion / corruption walk-back), not heal silently.
    e.once = !rng.bernoulli(0.15);
    switch (e.kind) {
      case FaultKind::kWriteFail:
      case FaultKind::kSlowIo:
        e.match = kWriteTargets[rng.uniform_index(6)];
        e.param = 200 + rng.next_u64() % 2800;  // stall µs (kSlowIo only)
        break;
      case FaultKind::kTruncate:
        e.match = kWriteTargets[rng.uniform_index(6)];
        e.param = rng.next_u64() % 2048;  // keep this many bytes
        e.once = true;  // corruption persists on disk by itself
        break;
      case FaultKind::kBitFlip:
        e.match = kWriteTargets[rng.uniform_index(6)];
        e.param = rng.next_u64() % (8 * 2048);  // bit index
        e.once = true;
        break;
      case FaultKind::kAllocFail:
        e.match = kAllocTargets[rng.uniform_index(3)];
        break;
      case FaultKind::kTaskFail:
        e.match = kTaskTargets[rng.uniform_index(3)];
        break;
    }
    schedule.events.push_back(std::move(e));
  }
  return schedule;
}

void arm_schedule(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_sched.events = schedule.events;
  g_sched.hits.assign(schedule.events.size(), 0);
  g_sched.fired.assign(schedule.events.size(), false);
  g_sched.stall_scale = std::max(0.0, schedule.stall_scale);
  g_sched.stats = ScheduleStats{};
  g_sched_armed.store(true, std::memory_order_relaxed);
}

void disarm_schedule() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_sched_armed.store(false, std::memory_order_relaxed);
  g_sched.events.clear();
  g_sched.hits.clear();
  g_sched.fired.clear();
}

bool schedule_armed() {
  return g_sched_armed.load(std::memory_order_relaxed);
}

ScheduleStats schedule_stats() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_sched.stats;
}

void on_write(const std::string& path) {
  const bool plan = g_armed.load(std::memory_order_relaxed);
  const bool sched = g_sched_armed.load(std::memory_order_relaxed);
  if (!plan && !sched) return;

  std::uint64_t stall_us = 0;
  double stall_scale = 1.0;
  bool fail = false;
  std::uint64_t fail_index = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    stall_scale = g_sched.stall_scale;
    if (plan && plan_matches(path)) {
      const std::uint64_t index =
          g_writes.fetch_add(1, std::memory_order_relaxed);
      if (g_plan.fail_on_write >= 0 &&
          index == static_cast<std::uint64_t>(g_plan.fail_on_write)) {
        fail = true;
        fail_index = index;
      }
    }
    if (sched) {
      ++g_sched.stats.writes_seen;
      for (const FiredAction& a : observe_locked(path, FaultKind::kWriteFail,
                                                 FaultKind::kSlowIo)) {
        if (a.kind == FaultKind::kSlowIo) {
          ++g_sched.stats.stalls;
          stall_us += a.param;
        } else {
          ++g_sched.stats.write_fails;
          fail = true;
          fail_index = g_sched.stats.writes_seen - 1;
        }
      }
    }
  }
  // Stall outside the lock so a slow device never serializes other threads'
  // hook checks; a stalled write that also dies stalls first (the realistic
  // ordering: the media hangs, then power goes).
  if (stall_us > 0) {
    const auto nap = static_cast<std::uint64_t>(
        static_cast<double>(stall_us) * stall_scale);
    if (nap > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(nap));
    }
  }
  if (fail) {
    throw InjectedFault("injected power loss during write #" +
                        std::to_string(fail_index) + " of " + path);
  }
}

void on_commit(const std::string& path) {
  const bool plan = g_armed.load(std::memory_order_relaxed);
  const bool sched = g_sched_armed.load(std::memory_order_relaxed);
  if (!plan && !sched) return;

  long long truncate_at = -1;
  long long flip_bit = -1;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (plan && plan_matches(path)) {
      truncate_at = g_plan.truncate_at;
      flip_bit = g_plan.flip_bit;
    }
    if (sched) {
      ++g_sched.stats.commits_seen;
      for (const FiredAction& a : observe_locked(path, FaultKind::kTruncate,
                                                 FaultKind::kBitFlip)) {
        if (a.kind == FaultKind::kTruncate) {
          ++g_sched.stats.truncations;
          truncate_at = static_cast<long long>(a.param);
        } else {
          ++g_sched.stats.bit_flips;
          flip_bit = static_cast<long long>(a.param);
        }
      }
    }
  }
  // File corruption outside the lock: commits to distinct paths must not
  // serialize, and the file is already durable (no hook state involved).
  corrupt_file(path, truncate_at, flip_bit);
}

void on_alloc(const std::string& site, std::size_t bytes) {
  if (!g_sched_armed.load(std::memory_order_relaxed)) return;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    ++g_sched.stats.allocs_seen;
    for (const FiredAction& a :
         observe_locked(site, FaultKind::kAllocFail, FaultKind::kAllocFail)) {
      (void)a;
      ++g_sched.stats.oom;
      fail = true;
    }
  }
  if (fail) {
    throw InjectedOom("injected allocation failure at " + site + " (" +
                      std::to_string(bytes) + " bytes)");
  }
}

void on_task(const std::string& task) {
  if (!g_sched_armed.load(std::memory_order_relaxed)) return;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    ++g_sched.stats.tasks_seen;
    for (const FiredAction& a :
         observe_locked(task, FaultKind::kTaskFail, FaultKind::kTaskFail)) {
      (void)a;
      ++g_sched.stats.task_fails;
      fail = true;
    }
  }
  if (fail) {
    throw InjectedTaskFault("injected task fault in " + task);
  }
}

}  // namespace odlp::util::fault
