#include "util/fault.h"

#include <cstdio>
#include <unistd.h>

#include "util/log.h"

namespace odlp::util::fault {

namespace {

bool g_armed = false;
FaultPlan g_plan;
std::uint64_t g_writes = 0;

bool matches(const std::string& path) {
  return g_plan.path_substring.empty() ||
         path.find(g_plan.path_substring) != std::string::npos;
}

}  // namespace

void arm(const FaultPlan& plan) {
  g_plan = plan;
  g_writes = 0;
  g_armed = true;
}

void disarm() {
  g_armed = false;
  g_writes = 0;
  g_plan = FaultPlan{};
}

bool armed() { return g_armed; }

std::uint64_t writes_observed() { return g_writes; }

void on_write(const std::string& path) {
  if (!g_armed || !matches(path)) return;
  const std::uint64_t index = g_writes++;
  if (g_plan.fail_on_write >= 0 &&
      index == static_cast<std::uint64_t>(g_plan.fail_on_write)) {
    throw InjectedFault("injected power loss during write #" +
                        std::to_string(index) + " of " + path);
  }
}

void on_commit(const std::string& path) {
  if (!g_armed || !matches(path)) return;
  if (g_plan.truncate_at >= 0) {
    if (truncate(path.c_str(), static_cast<off_t>(g_plan.truncate_at)) != 0) {
      log_warn("fault: truncate of " + path + " failed");
    }
  }
  if (g_plan.flip_bit >= 0) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (!f) {
      log_warn("fault: cannot reopen " + path + " for bit flip");
      return;
    }
    const long byte = static_cast<long>(g_plan.flip_bit / 8);
    const int bit = static_cast<int>(g_plan.flip_bit % 8);
    unsigned char c = 0;
    if (std::fseek(f, byte, SEEK_SET) == 0 && std::fread(&c, 1, 1, f) == 1) {
      c = static_cast<unsigned char>(c ^ (1u << bit));
      std::fseek(f, byte, SEEK_SET);
      std::fwrite(&c, 1, 1, f);
    } else {
      log_warn("fault: bit-flip offset past end of " + path);
    }
    std::fclose(f);
  }
}

}  // namespace odlp::util::fault
