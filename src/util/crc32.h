// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// integrity verification. Every on-disk artifact (buffer, model, vocab,
// manifest) carries a CRC footer so a torn write or bit flip is detected at
// load time instead of silently corrupting training state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odlp::util {

// One-shot CRC-32 of `len` bytes. `seed` chains calls:
//   crc32(b, n) == crc32(b + k, n - k, crc32(b, k)).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

// Incremental CRC-32 accumulator for streamed writes.
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  std::uint32_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace odlp::util
