// Wall-clock stopwatch used by the experiment harness to report real
// training / selection times alongside the analytic device cost model.
#pragma once

#include <chrono>

namespace odlp::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace odlp::util
