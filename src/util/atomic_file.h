// Crash-safe file replacement + bounds-checked binary parsing.
//
// AtomicFileWriter implements the classic durable-update protocol: all
// bytes go to `path + ".tmp"`, commit() flushes, fsyncs, and renames the
// temp file over the destination (then fsyncs the parent directory). A
// crash at any point before the rename leaves the previous file intact; a
// crash after it leaves the new one — the destination is never observed
// half-written. Every write is routed through util::fault so tests can
// script power-loss and bit-rot scenarios deterministically.
//
// ByteReader is the matching read side: checkpoint loaders slurp the whole
// file and parse it through a reader whose every access is bounds-checked,
// so a corrupt length prefix yields a CorruptionError instead of a
// multi-gigabyte allocation or an out-of-bounds read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/crc32.h"

namespace odlp::util {

// Typed error for any integrity failure in a checksummed/framed file: bad
// magic, bad CRC, truncated frame, or a field that contradicts the bytes
// actually present. Loaders throw this (a std::runtime_error) so callers
// can distinguish "corrupt checkpoint" from ordinary I/O errors.
class CorruptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Footer frame shared by all v2 binary checkpoint formats: the last 8 bytes
// of a file are { u32 kFooterMagic, u32 crc32(all preceding bytes) }.
constexpr std::uint32_t kFooterMagic = 0x54464441u;  // "ADFT"
constexpr std::size_t kFooterBytes = 8;

class AtomicFileWriter {
 public:
  // Opens `path + ".tmp"` for writing. Throws std::runtime_error if the
  // temp file cannot be created.
  explicit AtomicFileWriter(std::string path);

  // Uncommitted writers remove their temp file; the destination is
  // untouched.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void write(const void* data, std::size_t len);

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&value, sizeof(T));
  }

  // Running CRC-32 and byte count of everything written so far — capture
  // crc() before appending the footer so the footer excludes itself.
  std::uint32_t crc() const { return crc_.value(); }
  std::uint64_t bytes_written() const { return bytes_; }

  // Appends the standard v2 footer (kFooterMagic + current crc()).
  void write_footer();

  // Flush + fsync + rename over the destination + fsync parent directory.
  // After commit() the writer is inert. Throws std::runtime_error on
  // failure (temp file is removed).
  void commit();

  // Drops the temp file without touching the destination.
  void abort();

  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  Crc32 crc_;
  std::uint64_t bytes_ = 0;
  bool committed_ = false;
};

// Reads the entire file. Throws std::runtime_error if it cannot be opened
// or read.
std::vector<unsigned char> read_file(const std::string& path);

// Verifies the standard v2 footer of a whole-file image: size >= footer,
// footer magic matches, and crc32(bytes before footer) matches. Throws
// CorruptionError describing the failure; on success returns the payload
// size (file size minus footer).
std::size_t check_footer(const std::vector<unsigned char>& bytes,
                         const std::string& what);

class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size, std::string what)
      : data_(data), size_(size), what_(std::move(what)) {}

  std::size_t remaining() const { return size_ - offset_; }
  std::size_t offset() const { return offset_; }

  // Copies `len` bytes out; throws CorruptionError on overrun.
  void read(void* out, std::size_t len);

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    read(&value, sizeof(T));
    return value;
  }

  // Reads `len` raw bytes as a string (caller has validated `len` against
  // remaining() via the checks inside read()).
  std::string str(std::size_t len);

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string what_;
};

}  // namespace odlp::util
