#include "core/quality_metrics.h"

#include <cmath>

#include "core/buffer.h"
#include "tensor/ops.h"

namespace odlp::core {

double entropy_of_embedding(const tensor::Tensor& token_embeddings) {
  const std::size_t n = token_embeddings.rows();
  if (n <= 1) return 0.0;

  // p(e_i): per-token L2-norm mass.
  std::vector<double> mass(n, 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const float* row = token_embeddings.row(t);
    double acc = 0.0;
    for (std::size_t j = 0; j < token_embeddings.cols(); ++j) {
      acc += static_cast<double>(row[j]) * row[j];
    }
    mass[t] = std::sqrt(acc);
    total += mass[t];
  }
  if (total <= 0.0) return 0.0;

  double entropy = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double p = mass[t] / total;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy / std::log(static_cast<double>(n));
}

double domain_specific_score(const std::vector<std::string>& tokens,
                             const lexicon::LexiconDictionary& dict) {
  if (tokens.empty() || dict.num_domains() == 0) return 0.0;
  const auto counts = dict.overlaps(tokens);
  double sum = 0.0;
  for (std::size_t c : counts) {
    sum += static_cast<double>(c) / static_cast<double>(tokens.size());
  }
  return sum / static_cast<double>(dict.num_domains());
}

std::optional<std::size_t> dominant_domain(
    const std::vector<std::string>& tokens,
    const lexicon::LexiconDictionary& dict) {
  return dict.dominant_domain(tokens);
}

double in_domain_dissimilarity(
    const tensor::Tensor& embedding,
    const std::vector<const tensor::Tensor*>& same_domain_embeddings) {
  if (same_domain_embeddings.empty()) return 1.0;
  double sum = 0.0;
  for (const tensor::Tensor* other : same_domain_embeddings) {
    sum += 1.0 - static_cast<double>(tensor::cosine_similarity(embedding, *other));
  }
  return sum / static_cast<double>(same_domain_embeddings.size());
}

double in_domain_dissimilarity_cached(
    const tensor::Tensor& embedding, double embedding_norm,
    const std::vector<NormedEmbedding>& same_domain_embeddings) {
  if (same_domain_embeddings.empty()) return 1.0;
  double sum = 0.0;
  for (const NormedEmbedding& other : same_domain_embeddings) {
    // cosine_similarity returns 0 when either norm is zero; mirror that.
    float cos = 0.0f;
    if (embedding_norm != 0.0 && other.norm != 0.0) {
      cos = static_cast<float>(tensor::dot(embedding, *other.embedding) /
                               (embedding_norm * other.norm));
    }
    sum += 1.0 - static_cast<double>(cos);
  }
  return sum / static_cast<double>(same_domain_embeddings.size());
}

}  // namespace odlp::core
