#include "core/policy.h"

#include <vector>

namespace odlp::core {

Decision QualityReplacementPolicy::offer(const Candidate& candidate,
                                         const DataBuffer& buffer,
                                         util::Rng& rng) {
  if (!buffer.full()) return Decision::admit_free();

  std::vector<std::size_t> dominated;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (candidate.scores.dominates(buffer.entry(i).scores)) {
      dominated.push_back(i);
    }
  }
  if (dominated.empty()) return Decision::reject();
  // "If there are more than one options to replace, we will randomly select
  // one." (§3.2)
  return Decision::admit_replacing(dominated[rng.uniform_index(dominated.size())]);
}

}  // namespace odlp::core
