#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "eval/rouge.h"
#include "llm/batch_decode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "text/normalize.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace odlp::core {

namespace {

// Ceiling on one dialogue set's raw text; anything larger is hostile or
// corrupt input (the tokenizer would truncate to max_seq_len anyway, but
// scoring still walks the full text).
constexpr std::size_t kMaxDialogueBytes = 1 << 16;  // 64 KiB

bool all_finite(const tensor::Tensor& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(t.data()[i])) return false;
  }
  return true;
}

}  // namespace

PersonalizationEngine::PersonalizationEngine(
    llm::MiniLlm& model, const text::Tokenizer& tokenizer,
    llm::EmbeddingExtractor& extractor, data::UserOracle& oracle,
    const lexicon::LexiconDictionary& dict,
    std::unique_ptr<ReplacementPolicy> policy,
    std::unique_ptr<Synthesizer> synthesizer, const EngineConfig& config,
    util::Rng rng)
    : model_(model),
      tokenizer_(tokenizer),
      extractor_(extractor),
      oracle_(oracle),
      dict_(dict),
      policy_(std::move(policy)),
      synthesizer_(std::move(synthesizer)),
      config_(config),
      rng_(rng),
      buffer_(config.buffer_bins),
      trainer_(model, config.train, rng_.split()) {
  if (config_.use_lora && !model_.has_lora()) {
    model_.attach_lora(config_.lora);
  }
  if (config_.inference_precision != model_.inference_precision()) {
    model_.set_inference_precision(config_.inference_precision);
  }
}

Candidate PersonalizationEngine::score(const data::DialogueSet& set) {
  ODLP_TRACE_SCOPE("engine.score");
  static obs::Histogram& h_score = obs::registry().histogram("engine.score.us");
  static obs::Histogram& h_embed =
      obs::registry().histogram("engine.score.embed_us");
  static obs::Histogram& h_eoe = obs::registry().histogram("engine.score.eoe_us");
  static obs::Histogram& h_dss = obs::registry().histogram("engine.score.dss_us");
  static obs::Histogram& h_idd = obs::registry().histogram("engine.score.idd_us");
  util::Stopwatch total;

  Candidate cand;
  cand.set = &set;
  const std::string block = set.text_block();
  // One normalization pass feeds both the lexicon metrics and the embedding
  // extractor (which previously re-tokenized the block internally).
  const auto tokens = text::normalize_and_split(block);

  util::Stopwatch sw;
  tensor::Tensor token_embs;
  {
    ODLP_TRACE_SCOPE("engine.score.embed");
    token_embs = extractor_.token_embeddings(tokens);
    cand.embedding = tensor::mean_rows(token_embs);
  }
  h_embed.record(sw.elapsed_seconds() * 1e6);

  sw.reset();
  {
    ODLP_TRACE_SCOPE("engine.score.eoe");
    cand.scores.eoe = entropy_of_embedding(token_embs);
  }
  h_eoe.record(sw.elapsed_seconds() * 1e6);

  sw.reset();
  {
    ODLP_TRACE_SCOPE("engine.score.dss");
    cand.scores.dss = domain_specific_score(tokens, dict_);
    cand.dominant_domain = dominant_domain(tokens, dict_);
  }
  h_dss.record(sw.elapsed_seconds() * 1e6);

  sw.reset();
  {
    ODLP_TRACE_SCOPE("engine.score.idd");
    if (cand.dominant_domain) {
      // Incremental IDD: buffered norms are cached, the candidate's norm is
      // computed once, each cosine costs a single dot product.
      const double norm = std::sqrt(tensor::sum_squares(cand.embedding));
      cand.scores.idd = in_domain_dissimilarity_cached(
          cand.embedding, norm,
          buffer_.normed_embeddings_in_domain(*cand.dominant_domain));
    } else {
      // No lexicon overlap at all: the set carries no recognizable domain
      // content, so it brings no in-domain novelty.
      cand.scores.idd = 0.0;
    }
  }
  h_idd.record(sw.elapsed_seconds() * 1e6);
  h_score.record(total.elapsed_seconds() * 1e6);
  return cand;
}

bool PersonalizationEngine::process(const data::DialogueSet& set) {
  // Chaos-harness fault boundary: fires before any stats/buffer mutation so
  // an aborted-and-retried call cannot double-count the set.
  util::fault::on_task("engine.process");
  ODLP_TRACE_SCOPE("engine.process");
  static obs::Counter& c_seen = obs::registry().counter("engine.seen.sets");
  static obs::Counter& c_quarantine =
      obs::registry().counter("engine.offer.quarantine");
  static obs::Counter& c_accept = obs::registry().counter("engine.offer.accept");
  static obs::Counter& c_reject = obs::registry().counter("engine.offer.reject");
  static obs::Counter& c_admit_free =
      obs::registry().counter("engine.admit.free");
  static obs::Counter& c_admit_replace =
      obs::registry().counter("engine.admit.replace");
  static obs::Histogram& h_offer = obs::registry().histogram("engine.offer.us");
  ++stats_.seen;
  c_seen.inc();

  // Graceful degradation: malformed sets are quarantined (counted, logged)
  // instead of reaching the metrics, the policy, or the buffer.
  if (set.question.empty() || set.answer.empty()) {
    ++stats_.quarantined;
    c_quarantine.inc();
    util::log_warn("engine: quarantined empty dialogue set at stream position " +
                   std::to_string(set.stream_position));
    return false;
  }
  if (set.question.size() + set.answer.size() + set.reference.size() >
      kMaxDialogueBytes) {
    ++stats_.quarantined;
    c_quarantine.inc();
    util::log_warn("engine: quarantined oversized dialogue set at stream "
                   "position " + std::to_string(set.stream_position));
    return false;
  }

  Candidate cand = score(set);

  // A NaN/Inf embedding or score would propagate into every subsequent
  // EOE/IDD comparison through the buffer; quarantine instead.
  if (!all_finite(cand.embedding) || !std::isfinite(cand.scores.eoe) ||
      !std::isfinite(cand.scores.dss) || !std::isfinite(cand.scores.idd)) {
    ++stats_.quarantined;
    c_quarantine.inc();
    util::log_warn("engine: quarantined non-finite embedding/scores at stream "
                   "position " + std::to_string(set.stream_position));
    return false;
  }
  util::Stopwatch offer_sw;
  Decision decision;
  {
    ODLP_TRACE_SCOPE("engine.replacement");
    decision = policy_->offer(cand, buffer_, rng_);
  }
  h_offer.record(offer_sw.elapsed_seconds() * 1e6);
  if (selection_hook_) selection_hook_(cand, decision);

  bool admitted = false;
  if (decision.admit) {
    // Injected allocation failures target the buffer insert; firing before
    // annotation keeps the oracle's state untouched on an aborted call.
    util::fault::on_alloc("buffer", devicesim::paper_bin_spec().bytes());
    BufferEntry entry;
    entry.set = set;
    // Ask the user for the preferred response and replace the LLM-generated
    // answer before the set enters the buffer (paper §3.2) — unless the
    // annotation budget is exhausted, in which case the set is stored as-is.
    if (config_.annotation_budget == 0 ||
        stats_.annotations_made < config_.annotation_budget) {
      entry.set.answer = oracle_.annotate(set);
      entry.annotated = true;
      ++stats_.annotations_made;
    } else {
      entry.annotated = false;
      ++stats_.annotations_skipped;
    }
    // The candidate is dead after this branch (the selection hook already
    // ran), so its embedding moves instead of copying [1, D] floats.
    entry.embedding = std::move(cand.embedding);
    entry.dominant_domain = cand.dominant_domain;
    entry.scores = cand.scores;
    entry.inserted_at = stats_.seen;
    if (decision.victim) {
      buffer_.replace(*decision.victim, std::move(entry));
      ++stats_.admitted_replacing;
      c_admit_replace.inc();
    } else {
      buffer_.add(std::move(entry));
      ++stats_.admitted_free;
      c_admit_free.inc();
    }
    c_accept.inc();
    admitted = true;
  } else {
    ++stats_.rejected;
    c_reject.inc();
  }

  if (config_.finetune_interval > 0 && stats_.seen % config_.finetune_interval == 0) {
    finetune_now();
    if (finetune_hook_) finetune_hook_(stats_.seen);
  }
  return admitted;
}

void PersonalizationEngine::restore_buffer(DataBuffer buffer) {
  if (buffer.capacity() != config_.buffer_bins) {
    throw std::invalid_argument(
        "restore_buffer: capacity mismatch with configured buffer_bins");
  }
  // A governor bin cap outlives the restore: the pressure that imposed it
  // has not gone away just because the device rebooted.
  const std::optional<std::size_t> cap = buffer_.bin_cap();
  buffer_ = std::move(buffer);
  if (cap) buffer_.set_bin_cap(*cap);
}

void PersonalizationEngine::run_stream(const data::DialogueStream& stream) {
  for (const auto& set : stream) process(set);
}

void PersonalizationEngine::set_inference_precision(
    nn::InferencePrecision precision) {
  if (precision != model_.inference_precision()) {
    model_.set_inference_precision(precision);
  }
  config_.inference_precision = precision;
}

void PersonalizationEngine::set_max_new_tokens(std::size_t n) {
  config_.sampler.max_new_tokens = std::max<std::size_t>(1, n);
}

void PersonalizationEngine::set_synth_per_set(std::size_t n) {
  config_.synth_per_set = n;
}

void PersonalizationEngine::shed_buffer_to(std::size_t bins) {
  static obs::Counter& c_evicted =
      obs::registry().counter("engine.buffer.shed.evicted");
  const std::size_t evicted = buffer_.set_bin_cap(bins);
  if (evicted > 0) {
    c_evicted.inc(evicted);
    util::log_info("engine: buffer shed to " +
                   std::to_string(buffer_.effective_capacity()) +
                   " bins, evicted " + std::to_string(evicted));
  }
}

void PersonalizationEngine::finetune_now() {
  util::fault::on_task("engine.finetune");
  if (!finetune_enabled_) {
    ++stats_.finetune_skipped;
    return;
  }
  if (buffer_.empty()) return;
  ODLP_TRACE_SCOPE("engine.finetune");
  static obs::Histogram& h_finetune =
      obs::registry().histogram("engine.finetune.us");
  static obs::Histogram& h_synth =
      obs::registry().histogram("engine.synthesize.us");
  util::Stopwatch total;

  // Stage 2 (paper §3.3): synthesis happens right before fine-tuning.
  std::vector<text::Tokenizer::EncodedDialogue> examples;
  examples.reserve(buffer_.size() * (1 + config_.synth_per_set));
  {
    ODLP_TRACE_SCOPE("engine.synthesize");
    util::Stopwatch synth_sw;
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      const BufferEntry& entry = buffer_.entry(i);
      examples.push_back(tokenizer_.encode_dialogue(
          entry.set.question, entry.set.answer, config_.max_seq_len));
      if (synthesizer_ && config_.synth_per_set > 0) {
        const auto synthetic = synthesizer_->synthesize(
            entry.set, config_.synth_per_set, &stats_.synthesis);
        for (const auto& syn : synthetic) {
          examples.push_back(tokenizer_.encode_dialogue(
              syn.question, syn.answer, config_.max_seq_len));
          ++stats_.synthesized_used;
        }
      }
    }
    h_synth.record(synth_sw.elapsed_seconds() * 1e6);
  }

  const llm::TrainStats train = trainer_.fine_tune(examples);
  // Under LoRA the quantized base is untouched by training, but a full
  // fine-tune mutates it; re-snapshot either way (no-op at fp32).
  model_.refresh_quantized_weights();
  ++stats_.finetune_rounds;
  stats_.last_train_loss = train.final_epoch_loss;
  h_finetune.record(total.elapsed_seconds() * 1e6);
}

double PersonalizationEngine::evaluate(
    const std::vector<const data::DialogueSet*>& test, std::size_t repeats,
    std::optional<nn::InferencePrecision> precision) {
  if (test.empty() || repeats == 0) return 0.0;
  const std::vector<double> per_set = evaluate_per_set(test, repeats, precision);
  double total = 0.0;
  for (double s : per_set) total += s;
  return total / static_cast<double>(per_set.size());
}

std::vector<double> PersonalizationEngine::evaluate_per_set(
    const std::vector<const data::DialogueSet*>& test, std::size_t repeats,
    std::optional<nn::InferencePrecision> precision) {
  ODLP_TRACE_SCOPE("engine.evaluate");
  static obs::Histogram& h_eval =
      obs::registry().histogram("engine.evaluate.us");
  util::Stopwatch eval_sw;
  std::vector<double> scores(test.size(), 0.0);
  if (test.empty() || repeats == 0) return scores;
  if (precision) model_.set_inference_precision(*precision);

  // All (repeat, set) generations run through one continuous-batched
  // scheduler: up to decode_batch sessions share each forward step. Fixed
  // per-(repeat, set) sampler seeds make every generation independent of
  // the batching schedule (and of checkpoints/methods under comparison), so
  // scores are bit-identical at any decode_batch, including 1.
  llm::BatchedDecodeScheduler scheduler(
      model_, std::max<std::size_t>(1, config_.decode_batch));
  std::vector<std::size_t> tickets;
  tickets.reserve(repeats * test.size());
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < test.size(); ++i) {
      tickets.push_back(scheduler.submit(
          tokenizer_.encode_prompt(test[i]->question,
                                   model_.config().max_seq_len / 2),
          config_.sampler,
          util::Rng(0xE7A1ull + r * 7919ull + i * 0x9E3779B9ull)));
    }
  }
  scheduler.run();
  last_decode_occupancy_ = std::max<std::size_t>(1, scheduler.peak_occupancy());

  std::size_t t = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < test.size(); ++i) {
      const std::string response =
          tokenizer_.decode(scheduler.result(tickets[t++]));
      scores[i] += eval::rouge1_f1(response, test[i]->reference);
    }
  }
  for (double& s : scores) s /= static_cast<double>(repeats);
  h_eval.record(eval_sw.elapsed_seconds() * 1e6);
  return scores;
}

}  // namespace odlp::core
