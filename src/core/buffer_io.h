// Buffer persistence: save/restore the data-selection buffer across device
// reboots. The buffer is the framework's only training state besides the
// LoRA adapter weights, so together with MiniLlm::save/load this gives a
// complete on-device checkpoint.
//
// Format (binary, little-endian, versioned):
//   magic "ODBF", u32 version, u64 capacity, u64 count, then per entry:
//   strings (u32 length + bytes) question/answer/reference, i32 true_domain,
//   i32 true_subtopic, u8 is_noise, u64 stream_position, u64 inserted_at,
//   u8 annotated, i64 dominant_domain (-1 = none), f64 eoe/dss/idd,
//   u64 embedding_cols + floats.
#pragma once

#include <string>

#include "core/buffer.h"

namespace odlp::core {

// Writes the buffer to `path`. Throws std::runtime_error on I/O failure.
void save_buffer(const DataBuffer& buffer, const std::string& path);

// Reads a buffer previously written by save_buffer. Throws
// std::runtime_error on I/O failure or malformed/mismatched content.
DataBuffer load_buffer(const std::string& path);

}  // namespace odlp::core
