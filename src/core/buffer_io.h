// Buffer persistence: save/restore the data-selection buffer across device
// reboots. The buffer is the framework's only training state besides the
// LoRA adapter weights, so together with MiniLlm::save/load this gives a
// complete on-device checkpoint.
//
// Format (binary, little-endian, versioned):
//   magic "ODBF", u32 version, u64 capacity, u64 count, then per entry:
//   strings (u32 length + bytes) question/answer/reference, i32 true_domain,
//   i32 true_subtopic, u8 is_noise, u64 stream_position, u64 inserted_at,
//   u8 annotated, i64 dominant_domain (-1 = none), f64 eoe/dss/idd,
//   u64 embedding_cols + floats.
// Version 2 appends the standard CRC-32 integrity footer (see
// util/atomic_file.h) and is written via atomic replacement; version 1
// (pre-checksum) files still load read-only. See DESIGN.md §7.
#pragma once

#include <string>

#include "core/buffer.h"

namespace odlp::core {

// Atomically writes the buffer to `path` (v2: checksummed footer). Throws
// std::runtime_error on I/O failure.
void save_buffer(const DataBuffer& buffer, const std::string& path);

// Reads a buffer previously written by save_buffer (v2 verified against its
// CRC footer; legacy v1 accepted without one). Throws util::CorruptionError
// on corrupt/malformed content, std::runtime_error on I/O failure. Every
// length field is validated against the bytes actually present, so corrupt
// files fail cleanly instead of over-allocating.
DataBuffer load_buffer(const std::string& path);

}  // namespace odlp::core
