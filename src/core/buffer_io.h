// Buffer persistence: save/restore the data-selection buffer across device
// reboots. The buffer is the framework's only training state besides the
// LoRA adapter weights, so together with MiniLlm::save/load this gives a
// complete on-device checkpoint.
//
// Formats:
//   v3 (current, written by save_buffer): OBSF columnar container (see
//     io/obsf.h and DESIGN.md §14) — LZ4-compressed blocks of column-coded
//     entries, per-block CRC-32, header metadata carrying capacity/count.
//     Independently checksummed blocks make *partial* recovery possible:
//     recover_buffer() walks back to the last intact block instead of
//     discarding the whole file.
//   v2 (legacy, still written by save_buffer_legacy for comparison and
//     still loaded): magic "ODBF", u32 version, u64 capacity, u64 count,
//     then per entry: strings (u32 length + bytes) question/answer/
//     reference, i32 true_domain, i32 true_subtopic, u8 is_noise,
//     u64 stream_position, u64 inserted_at, u8 annotated,
//     i64 dominant_domain (-1 = none), f64 eoe/dss/idd, u64 embedding_cols
//     + floats, closed by the standard CRC-32 footer (util/atomic_file.h).
//   v1 (pre-checksum v2 without footer) still loads read-only.
// load_buffer dispatches on the leading magic. See DESIGN.md §7 and §14.
#pragma once

#include <cstddef>
#include <string>

#include "core/buffer.h"

namespace odlp::core {

// Atomically writes the buffer to `path` in the current (v3 OBSF) format.
// Throws std::runtime_error on I/O failure.
void save_buffer(const DataBuffer& buffer, const std::string& path);

// Writes the legacy v2 monolithic format (whole-file CRC footer). Kept for
// the format-migration tests and the bytes-at-rest comparison in bench_io.
void save_buffer_legacy(const DataBuffer& buffer, const std::string& path);

// Reads a buffer previously written by either save path (v3 blocks verified
// per-block, v2 against its CRC footer; legacy v1 accepted without one).
// Throws util::CorruptionError on corrupt/malformed content,
// std::runtime_error on I/O failure. Every length field is validated
// against the bytes actually present, so corrupt files fail cleanly instead
// of over-allocating.
DataBuffer load_buffer(const std::string& path);

// Best-effort load of a damaged v3 file: keeps every entry up to the last
// intact block and reports what was lost. (v2/v1 files are all-or-nothing —
// a single whole-file checksum cannot localize damage — so recovery of a
// legacy file either yields the full buffer or rethrows.)
struct BufferRecovery {
  DataBuffer buffer;
  std::size_t rows_recovered = 0;
  std::size_t rows_expected = 0;  // count recorded in the header
  bool truncated = false;         // damage was detected and cut off
};
BufferRecovery recover_buffer(const std::string& path);

}  // namespace odlp::core
