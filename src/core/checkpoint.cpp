#include "core/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/buffer_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/vocab_io.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace fs = std::filesystem;

namespace odlp::core {

namespace {

constexpr std::uint32_t kManifestMagic = 0x464d444fu;  // "ODMF"
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kStatsMagic = 0x5453444fu;  // "ODST"
// v2 appends finetune_skipped (the governor's kSkipFinetune counter); v1
// files remain loadable with the field defaulting to 0.
constexpr std::uint32_t kStatsVersion = 2;

// Component files covered by the manifest, in write order.
const char* const kComponents[] = {"model.bin", "buffer.bin", "vocab.txt",
                                   "stats.bin", "metrics.bin"};
constexpr std::size_t kNumComponents = 5;
// Pre-metrics generations (PR ≤ 4) have one fewer component; they remain
// restorable, just without the metrics snapshot.
constexpr std::size_t kLegacyNumComponents = 4;

std::string gen_dir_name(std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06" PRIu64, generation);
  return buf;
}

// Parses "gen-NNNNNN"; nullopt for anything else.
std::optional<std::uint64_t> parse_gen_dir(const std::string& name) {
  if (name.rfind("gen-", 0) != 0 || name.size() <= 4) return std::nullopt;
  std::uint64_t value = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return value;
}

struct ManifestEntry {
  std::string name;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

}  // namespace

void save_engine_stats(const EngineStats& stats, const std::string& path) {
  util::AtomicFileWriter out(path);
  out.write_pod(kStatsMagic);
  out.write_pod(kStatsVersion);
  out.write_pod<std::uint64_t>(stats.seen);
  out.write_pod<std::uint64_t>(stats.admitted_free);
  out.write_pod<std::uint64_t>(stats.admitted_replacing);
  out.write_pod<std::uint64_t>(stats.rejected);
  out.write_pod<std::uint64_t>(stats.quarantined);
  out.write_pod<std::uint64_t>(stats.annotations_made);
  out.write_pod<std::uint64_t>(stats.annotations_skipped);
  out.write_pod<std::uint64_t>(stats.finetune_rounds);
  out.write_pod<std::uint64_t>(stats.synthesis.generated);
  out.write_pod<std::uint64_t>(stats.synthesis.accepted);
  out.write_pod<std::uint64_t>(stats.synthesized_used);
  out.write_pod<double>(stats.last_train_loss);
  out.write_pod<std::uint64_t>(stats.finetune_skipped);  // v2
  out.write_footer();
  out.commit();
}

EngineStats load_engine_stats(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  const std::size_t body_end = util::check_footer(bytes, "engine_stats");
  util::ByteReader in(bytes.data(), body_end, "engine_stats");
  if (in.pod<std::uint32_t>() != kStatsMagic) {
    throw util::CorruptionError("engine_stats: bad magic");
  }
  const std::uint32_t version = in.pod<std::uint32_t>();
  if (version != 1 && version != kStatsVersion) {
    throw util::CorruptionError("engine_stats: unsupported version");
  }
  EngineStats stats;
  stats.seen = in.pod<std::uint64_t>();
  stats.admitted_free = in.pod<std::uint64_t>();
  stats.admitted_replacing = in.pod<std::uint64_t>();
  stats.rejected = in.pod<std::uint64_t>();
  stats.quarantined = in.pod<std::uint64_t>();
  stats.annotations_made = in.pod<std::uint64_t>();
  stats.annotations_skipped = in.pod<std::uint64_t>();
  stats.finetune_rounds = in.pod<std::uint64_t>();
  stats.synthesis.generated = in.pod<std::uint64_t>();
  stats.synthesis.accepted = in.pod<std::uint64_t>();
  stats.synthesized_used = in.pod<std::uint64_t>();
  stats.last_train_loss = in.pod<double>();
  if (version >= 2) stats.finetune_skipped = in.pod<std::uint64_t>();
  return stats;
}

CheckpointManager::CheckpointManager(std::string dir, std::size_t keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last == 0 ? 1 : keep_last) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot create directory " + dir_ +
                             ": " + ec.message());
  }
}

CheckpointContents CheckpointManager::contents_for(
    std::uint64_t generation) const {
  CheckpointContents c;
  c.generation = generation;
  c.dir = dir_ + "/" + gen_dir_name(generation);
  c.model_path = c.dir + "/model.bin";
  c.buffer_path = c.dir + "/buffer.bin";
  c.vocab_path = c.dir + "/vocab.txt";
  c.stats_path = c.dir + "/stats.bin";
  c.metrics_path = c.dir + "/metrics.bin";
  return c;
}

std::vector<std::uint64_t> CheckpointManager::generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_directory()) continue;
    if (const auto gen = parse_gen_dir(entry.path().filename().string())) {
      gens.push_back(*gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

void CheckpointManager::write_manifest(const CheckpointContents& c) const {
  std::vector<ManifestEntry> entries;
  entries.reserve(kNumComponents);
  for (const char* name : kComponents) {
    ManifestEntry e;
    e.name = name;
    const std::vector<unsigned char> bytes =
        util::read_file(c.dir + "/" + e.name);
    e.size = bytes.size();
    e.crc = util::crc32(bytes.data(), bytes.size());
    entries.push_back(std::move(e));
  }
  util::AtomicFileWriter out(c.dir + "/MANIFEST");
  out.write_pod(kManifestMagic);
  out.write_pod(kManifestVersion);
  out.write_pod<std::uint64_t>(c.generation);
  out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(e.name.size()));
    out.write(e.name.data(), e.name.size());
    out.write_pod<std::uint64_t>(e.size);
    out.write_pod<std::uint32_t>(e.crc);
  }
  out.write_footer();
  out.commit();
}

bool CheckpointManager::verify_generation(const CheckpointContents& c) const {
  const std::string manifest_path = c.dir + "/MANIFEST";
  try {
    const std::vector<unsigned char> bytes = util::read_file(manifest_path);
    const std::size_t body_end = util::check_footer(bytes, "manifest");
    util::ByteReader in(bytes.data(), body_end, "manifest");
    if (in.pod<std::uint32_t>() != kManifestMagic) {
      throw util::CorruptionError("manifest: bad magic");
    }
    if (in.pod<std::uint32_t>() != kManifestVersion) {
      throw util::CorruptionError("manifest: unsupported version");
    }
    if (in.pod<std::uint64_t>() != c.generation) {
      throw util::CorruptionError("manifest: generation number mismatch");
    }
    const auto nfiles = in.pod<std::uint32_t>();
    if (nfiles != kNumComponents && nfiles != kLegacyNumComponents) {
      throw util::CorruptionError("manifest: unexpected file count");
    }
    for (std::uint32_t i = 0; i < nfiles; ++i) {
      const auto name_len = in.pod<std::uint32_t>();
      if (name_len > 256) throw util::CorruptionError("manifest: name too long");
      const std::string name = in.str(name_len);
      const auto expect_size = in.pod<std::uint64_t>();
      const auto expect_crc = in.pod<std::uint32_t>();
      const std::vector<unsigned char> file =
          util::read_file(c.dir + "/" + name);
      if (file.size() != expect_size) {
        throw util::CorruptionError("manifest: " + name + " size mismatch");
      }
      if (util::crc32(file.data(), file.size()) != expect_crc) {
        throw util::CorruptionError("manifest: " + name + " CRC mismatch");
      }
    }
    return true;
  } catch (const std::exception& e) {
    util::log_warn("checkpoint: skipping generation " +
                   std::to_string(c.generation) + " (" + e.what() + ")");
    return false;
  }
}

std::uint64_t CheckpointManager::save(llm::MiniLlm& model,
                                      const DataBuffer& buffer,
                                      const text::Vocab& vocab,
                                      const EngineStats& stats) {
  util::fault::on_task("ckpt.save");
  ODLP_TRACE_SCOPE("ckpt.save");
  static obs::Counter& c_saves = obs::registry().counter("ckpt.saves.total");
  static obs::Histogram& h_save = obs::registry().histogram("ckpt.save_us");
  util::Stopwatch sw;
  const std::vector<std::uint64_t> existing = generations();
  const std::uint64_t generation = existing.empty() ? 1 : existing.back() + 1;
  const CheckpointContents c = contents_for(generation);
  std::error_code ec;
  fs::create_directories(c.dir, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot create " + c.dir + ": " +
                             ec.message());
  }
  // Component files first (each atomic on its own), manifest strictly last:
  // a crash anywhere in between leaves a manifest-less directory that
  // restore() ignores. With a retry policy installed, each component write
  // is its own retry scope — a transient fault re-runs just that file.
  const auto step = [&](const char* op, auto&& fn) {
    if (retry_) {
      retry_->run(op, fn);
    } else {
      fn();
    }
  };
  step("ckpt.save.model", [&] { model.save(c.model_path); });
  step("ckpt.save.buffer", [&] { save_buffer(buffer, c.buffer_path); });
  step("ckpt.save.vocab", [&] { text::save_vocab(vocab, c.vocab_path); });
  step("ckpt.save.stats", [&] { save_engine_stats(stats, c.stats_path); });
  step("ckpt.save.metrics",
       [&] { obs::save_metrics(obs::registry().snapshot(), c.metrics_path); });
  step("ckpt.save.manifest", [&] { write_manifest(c); });
  prune();
  c_saves.inc();
  h_save.record(sw.elapsed_seconds() * 1e6);
  return generation;
}

std::optional<CheckpointContents> CheckpointManager::newest_valid() const {
  std::vector<std::uint64_t> gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const CheckpointContents c = contents_for(*it);
    if (verify_generation(c)) return c;
  }
  return std::nullopt;
}

std::optional<CheckpointManager::Restored> CheckpointManager::restore(
    llm::MiniLlm& model) const {
  ODLP_TRACE_SCOPE("ckpt.restore");
  static obs::Counter& c_restores =
      obs::registry().counter("ckpt.restores.total");
  std::vector<std::uint64_t> gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const CheckpointContents c = contents_for(*it);
    if (!verify_generation(c)) continue;
    try {
      const auto load_generation = [&]() -> Restored {
        Restored r;
        r.generation = c.generation;
        model.load(c.model_path);
        r.buffer = load_buffer(c.buffer_path);
        r.vocab = text::load_vocab(c.vocab_path);
        r.stats = load_engine_stats(c.stats_path);
        // Re-import the persisted registry snapshot so cumulative counters
        // and timings continue across the reboot. Legacy (4-component)
        // generations simply have no snapshot to import.
        if (fs::exists(c.metrics_path)) {
          obs::registry().restore(obs::load_metrics(c.metrics_path));
        }
        return r;
      };
      // Under a retry policy, transient read faults re-run this generation's
      // load; corruption stays terminal and falls through to older ones.
      Restored r =
          retry_ ? retry_->run("ckpt.restore", load_generation)
                 : load_generation();
      c_restores.inc();
      return r;
    } catch (const std::exception& e) {
      // CRCs passed but the content is unusable (e.g. the model geometry
      // changed between save and restore) — fall back to an older
      // generation rather than crashing the device.
      util::log_warn("checkpoint: generation " + std::to_string(c.generation) +
                     " verified but failed to restore (" + e.what() + ")");
    }
  }
  return std::nullopt;
}

std::uint64_t CheckpointManager::generation_bytes(
    std::uint64_t generation) const {
  const CheckpointContents c = contents_for(generation);
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(c.dir, ec)) {
    if (entry.is_regular_file()) {
      total += static_cast<std::uint64_t>(entry.file_size(ec));
    }
  }
  return total;
}

void CheckpointManager::prune() const {
  std::vector<std::uint64_t> gens = generations();
  if (gens.size() <= keep_last_) return;
  for (std::size_t i = 0; i + keep_last_ < gens.size(); ++i) {
    std::error_code ec;
    fs::remove_all(contents_for(gens[i]).dir, ec);
    if (ec) {
      util::log_warn("checkpoint: failed to prune generation " +
                     std::to_string(gens[i]) + ": " + ec.message());
    }
  }
}

}  // namespace odlp::core
