// ROUGE-1 sanity check on synthesized dialogue sets (paper §3.3).
//
// The paper's text says a generated set is discarded "if ROUGE-1 between it
// and original set is above a threshold", but the stated motivation is that
// generated sets sometimes "differ from the original dialogue set
// significantly" — i.e. the intent is to discard *dissimilar* outputs.
// Both readings are implemented (DESIGN.md decision #3):
//   kRejectBelow — discard candidates whose ROUGE-1 similarity to the
//                  original falls below the threshold (intent; default).
//   kRejectAbove — discard candidates above the threshold (literal text;
//                  filters near-duplicates).
#pragma once

#include <string>

#include "data/dialogue.h"

namespace odlp::core {

enum class SanityCheckMode { kRejectBelow, kRejectAbove };

struct SanityCheckConfig {
  SanityCheckMode mode = SanityCheckMode::kRejectBelow;
  double threshold = 0.35;
};

class RougeSanityCheck {
 public:
  explicit RougeSanityCheck(const SanityCheckConfig& config) : config_(config) {}

  // ROUGE-1 F1 between the two sets' full text blocks.
  double similarity(const data::DialogueSet& original,
                    const data::DialogueSet& candidate) const;

  bool accepts(const data::DialogueSet& original,
               const data::DialogueSet& candidate) const;

  const SanityCheckConfig& config() const { return config_; }

 private:
  SanityCheckConfig config_;
};

}  // namespace odlp::core
