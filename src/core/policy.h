// Replacement-policy interface for the data-selection buffer.
//
// The engine scores each arriving dialogue set (embedding, dominant domain,
// EOE/DSS/IDD) and offers the scored candidate to the policy; the policy
// decides whether to admit it and, when the buffer is full, which entry to
// evict. This is the extension point where the paper's quality-score policy
// and the Random / FIFO / K-Center baselines plug in interchangeably.
#pragma once

#include <optional>
#include <string>

#include "core/buffer.h"
#include "core/quality_metrics.h"
#include "data/dialogue.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace odlp::core {

struct Candidate {
  const data::DialogueSet* set = nullptr;
  tensor::Tensor embedding;  // [1, D]
  std::optional<std::size_t> dominant_domain;
  QualityScores scores;
};

struct Decision {
  bool admit = false;
  // Entry to evict when the buffer is full; unset when admitting into a free
  // bin (or when not admitting).
  std::optional<std::size_t> victim;

  static Decision reject() { return Decision{}; }
  static Decision admit_free() { return Decision{true, std::nullopt}; }
  static Decision admit_replacing(std::size_t index) {
    return Decision{true, index};
  }
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual std::string name() const = 0;

  // Decide the fate of `candidate` given the current buffer. Must return a
  // victim whenever it admits into a full buffer.
  virtual Decision offer(const Candidate& candidate, const DataBuffer& buffer,
                         util::Rng& rng) = 0;

  // Reset per-stream state (e.g. Random Replace's arrival counter).
  virtual void reset() {}
};

// The paper's policy: admit into any free bin; once full, replace a buffered
// entry that the candidate Pareto-dominates on all three quality metrics
// (EOE, DSS, IDD), choosing uniformly at random among dominated entries.
// Linear in the buffer size per offered set (§3.2).
class QualityReplacementPolicy final : public ReplacementPolicy {
 public:
  std::string name() const override { return "Ours"; }
  Decision offer(const Candidate& candidate, const DataBuffer& buffer,
                 util::Rng& rng) override;
};

}  // namespace odlp::core
