// The on-device data-selection buffer (paper §3.2, §4.1).
//
// Bin-organized: each bin holds one dialogue set's text, its dominant
// domain, its embedding vector, and its quality scores. Embeddings are
// stored so they "do not need to be re-computed each time a new dialogue set
// is being evaluated" (paper §3.2). Memory is accounted with the paper's
// 22 KB bin geometry via devicesim.
#pragma once

#include <optional>
#include <vector>

#include "core/quality_metrics.h"
#include "data/dialogue.h"
#include "devicesim/memory_model.h"
#include "tensor/tensor.h"

namespace odlp::core {

struct BufferEntry {
  data::DialogueSet set;
  tensor::Tensor embedding;  // [1, D] whole-set embedding
  std::optional<std::size_t> dominant_domain;
  QualityScores scores;
  std::size_t inserted_at = 0;  // stream position at insertion (FIFO order)
  bool annotated = false;       // user annotation already applied
};

// One same-domain buffered embedding together with its cached L2 norm
// (double-precision, the accumulation tensor::cosine_similarity uses), so
// each IDD cosine costs one dot product instead of a dot plus two norms.
struct NormedEmbedding {
  const tensor::Tensor* embedding = nullptr;
  double norm = 0.0;  // sqrt(Σx²); 0 for the zero vector
};

class DataBuffer {
 public:
  explicit DataBuffer(std::size_t capacity_bins);

  bool full() const { return entries_.size() >= effective_capacity(); }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Live bins usable right now: the allocated capacity, unless a bin cap
  // (resource-pressure shedding) lowers it.
  std::size_t effective_capacity() const {
    return bin_cap_ ? std::min(capacity_, *bin_cap_) : capacity_;
  }
  std::optional<std::size_t> bin_cap() const { return bin_cap_; }

  // Caps the live bins at `bins` (clamped to [1, capacity]), evicting
  // oldest-first until the contents fit — the governor's kBinShed rung.
  // The allocation (and the persisted capacity) is untouched, so lifting
  // the cap restores the full bin count without reallocation. Returns the
  // number of entries evicted.
  std::size_t set_bin_cap(std::size_t bins);
  void clear_bin_cap() { bin_cap_.reset(); }

  // Appends when not full. Returns the new entry's index.
  // Precondition: !full().
  std::size_t add(BufferEntry entry);

  // Replaces the entry at `index` and returns the evicted entry.
  BufferEntry replace(std::size_t index, BufferEntry entry);

  const BufferEntry& entry(std::size_t index) const { return entries_.at(index); }
  BufferEntry& mutable_entry(std::size_t index) { return entries_.at(index); }
  const std::vector<BufferEntry>& entries() const { return entries_; }

  // Embeddings of all entries whose dominant domain equals `domain`
  // (for the IDD computation against the buffer).
  std::vector<const tensor::Tensor*> embeddings_in_domain(std::size_t domain) const;

  // Same selection with each embedding's cached L2 norm attached — the
  // incremental-IDD fast path. Norms are maintained by add()/replace()
  // (and therefore by buffer_io loads, which insert through add()). Note:
  // mutating an entry's embedding through mutable_entry() bypasses the
  // cache; entries are otherwise immutable once stored.
  std::vector<NormedEmbedding> normed_embeddings_in_domain(std::size_t domain) const;

  // Cached L2 norm of entry `index`'s embedding.
  double embedding_norm(std::size_t index) const { return norms_.at(index); }

  // Index of the oldest entry (minimum inserted_at); nullopt when empty.
  std::optional<std::size_t> oldest_index() const;

  // Paper-accounted footprint of the full buffer allocation.
  double allocated_kb() const { return devicesim::buffer_kb(capacity_); }

  void clear() {
    entries_.clear();
    norms_.clear();
  }

 private:
  std::size_t capacity_;
  std::optional<std::size_t> bin_cap_;  // live-bin cap under pressure shedding
  std::vector<BufferEntry> entries_;
  std::vector<double> norms_;  // norms_[i] = L2 norm of entries_[i].embedding
};

}  // namespace odlp::core
