// WeightedSumPolicy — the natural alternative to the paper's Pareto-dominance
// replacement rule (DESIGN.md decision #1), provided for ablation.
//
// Scores every set as w_eoe·EOE + w_dss·DSS + w_idd·IDD and, when the buffer
// is full, replaces the lowest-scoring buffered entry if the candidate
// scores strictly higher. Unlike Pareto dominance this always has a victim
// candidate, so it churns the buffer more aggressively; the ablation bench
// measures whether that helps or hurts.
#pragma once

#include "core/policy.h"

namespace odlp::core {

class WeightedSumPolicy final : public ReplacementPolicy {
 public:
  struct Weights {
    double eoe = 1.0;
    double dss = 1.0;
    double idd = 1.0;
  };

  WeightedSumPolicy() : WeightedSumPolicy(Weights{}) {}
  explicit WeightedSumPolicy(const Weights& weights) : weights_(weights) {}

  std::string name() const override { return "WeightedSum"; }
  Decision offer(const Candidate& candidate, const DataBuffer& buffer,
                 util::Rng& rng) override;

  double score(const QualityScores& s) const {
    return weights_.eoe * s.eoe + weights_.dss * s.dss + weights_.idd * s.idd;
  }

 private:
  Weights weights_;
};

}  // namespace odlp::core
