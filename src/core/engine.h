// PersonalizationEngine: the end-to-end on-device personalization framework
// (paper Fig. 1).
//
// For every dialogue set arriving from the user↔LLM interaction stream:
//   1. score it with the self-supervised quality metrics (embedding from the
//      LLM's last hidden layer, EOE/DSS/IDD against the buffer),
//   2. offer it to the replacement policy (ours or a baseline),
//   3. on admission, ask the user for the preferred response and store the
//      annotated set in the buffer.
// Every `finetune_interval` streamed sets, the engine synthesizes additional
// semantically-similar sets from the buffer contents and LoRA-fine-tunes the
// model on selected + synthesized data. Evaluation generates responses for
// held-out questions at τ = 0.5 and reports mean ROUGE-1 against the
// references.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/buffer.h"
#include "core/policy.h"
#include "core/synthesizer.h"
#include "data/dialogue.h"
#include "data/user_oracle.h"
#include "llm/embedding_extractor.h"
#include "llm/minillm.h"
#include "llm/sampler.h"
#include "llm/trainer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace odlp::core {

struct EngineConfig {
  std::size_t buffer_bins = 32;
  std::size_t finetune_interval = 100;  // paper: every 800 streamed sets
  std::size_t synth_per_set = 3;        // paper default: 3 additional sets
  std::size_t max_seq_len = 64;         // token budget per encoded dialogue
  // Maximum user-annotation requests over the engine's lifetime (0 =
  // unlimited). Once exhausted, admitted sets keep the LLM's own response —
  // an even stricter sparse-annotation regime than the paper's
  // annotate-on-selection (exercised by the annotation-budget ablation).
  std::size_t annotation_budget = 0;
  bool use_lora = true;
  nn::LoraConfig lora;                  // r=8, α=16, dropout=0.05 (paper)
  llm::TrainConfig train;
  llm::SamplerConfig sampler;           // τ=0.5 evaluation generation (paper)
  // Continuous-batching width for evaluation/synthesis generation: up to
  // this many KV-cached sessions share each batched forward step (1 =
  // serial decoding; outputs are bit-identical at every width).
  std::size_t decode_batch = 4;
  // Precision for the model's inference-time forwards (synthesis,
  // evaluation, embedding extraction). kInt8 quantizes the frozen base
  // weights at engine construction; training math stays fp32 either way.
  nn::InferencePrecision inference_precision = nn::InferencePrecision::kFp32;
};

struct EngineStats {
  std::size_t seen = 0;
  std::size_t admitted_free = 0;
  std::size_t admitted_replacing = 0;
  std::size_t rejected = 0;
  // Malformed inputs turned away before scoring/selection could see them:
  // empty or oversized dialogue sets, and sets whose embedding or quality
  // scores came back non-finite (would otherwise poison EOE/IDD and every
  // buffered comparison).
  std::size_t quarantined = 0;
  std::size_t annotations_made = 0;
  std::size_t annotations_skipped = 0;  // budget exhausted at admission
  std::size_t finetune_rounds = 0;
  // Fine-tune rounds skipped because the resource governor disabled
  // training (kSkipFinetune rung); selection and annotation kept running.
  std::size_t finetune_skipped = 0;
  SynthesisStats synthesis;
  std::size_t synthesized_used = 0;   // synthetic sets fed to fine-tuning
  double last_train_loss = 0.0;
  // Wall-clock timings live in the obs metrics registry, not here:
  // train.wall_us.total (counter) and train.seconds_per_epoch.last (gauge)
  // — see DESIGN.md §10. CheckpointManager persists a registry snapshot per
  // generation, so cumulative timings survive reboots alongside the stats.
};

class PersonalizationEngine {
 public:
  PersonalizationEngine(llm::MiniLlm& model, const text::Tokenizer& tokenizer,
                        llm::EmbeddingExtractor& extractor,
                        data::UserOracle& oracle,
                        const lexicon::LexiconDictionary& dict,
                        std::unique_ptr<ReplacementPolicy> policy,
                        std::unique_ptr<Synthesizer> synthesizer,
                        const EngineConfig& config, util::Rng rng);

  // Score a dialogue set against the current buffer (no side effects).
  Candidate score(const data::DialogueSet& set);

  // One stream step: score → policy → (annotate + store). Returns true if
  // the set was admitted. Triggers fine-tuning on the configured interval.
  bool process(const data::DialogueSet& set);

  // Invoked after every fine-tune round (for learning-curve recording).
  using FinetuneHook = std::function<void(std::size_t seen_sets)>;
  void set_finetune_hook(FinetuneHook hook) { finetune_hook_ = std::move(hook); }

  // Invoked for every selection decision with the scored candidate and the
  // policy's verdict (audit logging / live monitoring; see analysis/).
  using SelectionHook = std::function<void(const Candidate&, const Decision&)>;
  void set_selection_hook(SelectionHook hook) {
    selection_hook_ = std::move(hook);
  }

  // Consume an entire stream.
  void run_stream(const data::DialogueStream& stream);

  // Synthesize from the buffer and fine-tune immediately. A no-op (counted
  // in stats().finetune_skipped) while fine-tuning is disabled by the
  // resource governor.
  void finetune_now();

  // --- Resource-governor control surface (see resil::apply_decision) ---
  // Each knob is idempotent and reversible; the governor applies them as a
  // bundle per rung, but they are independently usable.

  // Switches inference-time forwards (synthesis, evaluation, embeddings)
  // between fp32 and the quantized int8 base. Throws std::runtime_error for
  // kInt8 when the build lacks ODLP_INT8 (matching llm::MiniLlm).
  void set_inference_precision(nn::InferencePrecision precision);
  // Decode generation budget for evaluation/synthesis sampling (KV-cache
  // live footprint scales with it). Clamped to at least 1.
  void set_max_new_tokens(std::size_t n);
  // Synthetic sets generated per buffered set at fine-tune time (0 = off).
  void set_synth_per_set(std::size_t n);
  // Caps the buffer's live bins (oldest entries evicted); the allocation and
  // the persisted capacity are untouched. clear_buffer_cap() lifts the cap.
  void shed_buffer_to(std::size_t bins);
  void clear_buffer_cap() { buffer_.clear_bin_cap(); }
  // Gates fine-tune rounds (the kSkipFinetune rung). Disabled rounds are
  // counted in stats().finetune_skipped.
  void set_finetune_enabled(bool enabled) { finetune_enabled_ = enabled; }
  bool finetune_enabled() const { return finetune_enabled_; }

  // Mean ROUGE-1 of generated responses against references over `test`.
  // `repeats` averages over that many independent sampler seeds to damp the
  // τ=0.5 sampling variance (1 = single pass, the paper's protocol).
  // `precision`, when set, switches the model (and the per-lane clones) to
  // that inference precision for this and subsequent inference — pass it to
  // compare fp32 vs int8 generation on the identical seeds.
  double evaluate(const std::vector<const data::DialogueSet*>& test,
                  std::size_t repeats = 1,
                  std::optional<nn::InferencePrecision> precision = std::nullopt);

  // Per-set ROUGE-1 scores (mean over `repeats` sampler seeds), aligned with
  // `test`. Input to eval::paired_bootstrap / sign tests when comparing two
  // engines evaluated on the identical subset.
  std::vector<double> evaluate_per_set(
      const std::vector<const data::DialogueSet*>& test,
      std::size_t repeats = 1,
      std::optional<nn::InferencePrecision> precision = std::nullopt);

  // Peak number of simultaneously-live KV-cached decode sessions in the
  // most recent evaluation (1 before any evaluation ran). The devicesim
  // memory ledger multiplies its KV-cache term by this occupancy.
  std::size_t decode_kv_sessions() const { return last_decode_occupancy_; }

  const DataBuffer& buffer() const { return buffer_; }

  // Replaces the engine's buffer with a previously persisted one (device
  // reboot restore; see core/buffer_io.h). The restored buffer's capacity
  // must equal the configured bin count — throws std::invalid_argument
  // otherwise.
  void restore_buffer(DataBuffer buffer);
  const EngineStats& stats() const { return stats_; }
  const ReplacementPolicy& policy() const { return *policy_; }
  const EngineConfig& config() const { return config_; }
  llm::Trainer& trainer() { return trainer_; }

  // --- Fleet state-swap surface (src/fleet/) ---
  // A worker engine is a reusable shell: between activations the scheduler
  // moves each user's mutable state (buffer, stats, policy, synthesizer,
  // rngs, optimizer moments, adapter values) in and out so any worker
  // resumes any user bit-identically to a dedicated sequential engine.
  util::Rng& rng() { return rng_; }
  void set_stats(const EngineStats& stats) { stats_ = stats; }
  DataBuffer take_buffer() { return std::move(buffer_); }
  std::unique_ptr<ReplacementPolicy> take_policy() {
    return std::move(policy_);
  }
  std::unique_ptr<Synthesizer> take_synthesizer() {
    return std::move(synthesizer_);
  }
  void install_policy(std::unique_ptr<ReplacementPolicy> policy) {
    policy_ = std::move(policy);
  }
  void install_synthesizer(std::unique_ptr<Synthesizer> synthesizer) {
    synthesizer_ = std::move(synthesizer);
  }

 private:
  llm::MiniLlm& model_;
  const text::Tokenizer& tokenizer_;
  llm::EmbeddingExtractor& extractor_;
  data::UserOracle& oracle_;
  const lexicon::LexiconDictionary& dict_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<Synthesizer> synthesizer_;
  EngineConfig config_;
  util::Rng rng_;
  DataBuffer buffer_;
  llm::Trainer trainer_;
  EngineStats stats_;
  bool finetune_enabled_ = true;
  std::size_t last_decode_occupancy_ = 1;
  FinetuneHook finetune_hook_;
  SelectionHook selection_hook_;
};

}  // namespace odlp::core
