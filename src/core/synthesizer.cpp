#include "core/synthesizer.h"

#include <algorithm>

#include "llm/batch_decode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/normalize.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace odlp::core {

namespace {

// Shared instrumentation for both synthesizer implementations: generation
// candidates and ROUGE-gate verdicts, mirrored into the registry so the
// acceptance rate is visible without threading SynthesisStats around.
struct SynthMetrics {
  obs::Counter& generated = obs::registry().counter("synth.generated.sets");
  obs::Counter& accepted = obs::registry().counter("synth.accepted.sets");
  obs::Counter& rejected = obs::registry().counter("synth.rejected.sets");
  obs::Histogram& generate_us = obs::registry().histogram("synth.generate.us");
  obs::Histogram& gate_us = obs::registry().histogram("synth.gate.us");

  static SynthMetrics& get() {
    static SynthMetrics m;
    return m;
  }
};

bool gated_accepts(RougeSanityCheck& sanity, const data::DialogueSet& original,
                   const data::DialogueSet& candidate) {
  ODLP_TRACE_SCOPE("synth.gate");
  SynthMetrics& m = SynthMetrics::get();
  util::Stopwatch sw;
  const bool ok = sanity.accepts(original, candidate);
  m.gate_us.record(sw.elapsed_seconds() * 1e6);
  m.generated.inc();
  (ok ? m.accepted : m.rejected).inc();
  return ok;
}

}  // namespace

std::string synthesis_prompt(const data::DialogueSet& original) {
  // Verbatim from paper §3.3.
  return "Please refine and generate a text semantically similar to the "
         "following text block, no need to answer it, no need to explain, "
         "use [] to hold your generated response: " +
         original.text_block();
}

ParaphraseSynthesizer::ParaphraseSynthesizer(const lexicon::LexiconDictionary& dict,
                                             util::Rng rng)
    : ParaphraseSynthesizer(dict, rng, Config{}) {}

ParaphraseSynthesizer::ParaphraseSynthesizer(const lexicon::LexiconDictionary& dict,
                                             util::Rng rng, const Config& config)
    : dict_(dict), rng_(rng), config_(config), sanity_(config.sanity) {}

std::string ParaphraseSynthesizer::paraphrase_text(const std::string& text) {
  const auto tokens = text::normalize_and_split(text);
  const auto& filler = lexicon::filler_words();
  std::vector<std::string> out;
  out.reserve(tokens.size() + 2);

  for (const auto& token : tokens) {
    // Synonym swap: replace a lexicon word with another word from the same
    // sub-lexicon (the paraphrase stays on-topic but changes surface form).
    bool swapped = false;
    if (rng_.bernoulli(config_.synonym_swap_rate)) {
      for (const auto& domain : dict_.domains()) {
        if (!domain.contains(token)) continue;
        for (const auto& sub : domain.sublexicons()) {
          if (std::find(sub.words.begin(), sub.words.end(), token) !=
              sub.words.end()) {
            out.push_back(sub.words[rng_.uniform_index(sub.words.size())]);
            swapped = true;
            break;
          }
        }
        if (swapped) break;
      }
    }
    if (swapped) continue;

    // Filler jitter: occasionally drop a filler word or insert a new one.
    const bool is_filler =
        std::find(filler.begin(), filler.end(), token) != filler.end();
    if (is_filler && rng_.bernoulli(config_.filler_jitter_rate)) {
      continue;  // drop
    }
    out.push_back(token);
    if (rng_.bernoulli(config_.filler_jitter_rate * 0.5)) {
      out.push_back(filler[rng_.uniform_index(filler.size())]);
    }
  }
  if (out.empty()) out.push_back(tokens.empty() ? "okay" : tokens.front());
  return util::join(out, " ");
}

std::vector<data::DialogueSet> ParaphraseSynthesizer::synthesize(
    const data::DialogueSet& original, std::size_t count, SynthesisStats* stats) {
  ODLP_TRACE_SCOPE("synth.generate");
  util::Stopwatch sw;
  std::vector<data::DialogueSet> accepted;
  // Allow a few retries per requested set so the sanity check can reject
  // degenerate paraphrases without starving the output.
  const std::size_t max_attempts = count * 3;
  std::size_t attempts = 0;
  while (accepted.size() < count && attempts < max_attempts) {
    ++attempts;
    data::DialogueSet candidate = original;
    candidate.question = paraphrase_text(original.question);
    candidate.answer = paraphrase_text(original.answer);
    // The reference (user annotation) is carried over unchanged: the
    // synthetic pair keeps the expected response of its original (§3.3).
    if (stats) ++stats->generated;
    if (gated_accepts(sanity_, original, candidate)) {
      if (stats) ++stats->accepted;
      accepted.push_back(std::move(candidate));
    }
  }
  SynthMetrics::get().generate_us.record(sw.elapsed_seconds() * 1e6);
  return accepted;
}

LlmSynthesizer::LlmSynthesizer(llm::MiniLlm& model, const text::Tokenizer& tokenizer,
                               const llm::SamplerConfig& sampler_config,
                               util::Rng rng, const SanityCheckConfig& sanity,
                               std::optional<nn::InferencePrecision> precision,
                               std::size_t decode_batch)
    : model_(model),
      tokenizer_(tokenizer),
      sampler_config_(sampler_config),
      rng_(rng),
      sanity_(sanity),
      decode_batch_(decode_batch == 0 ? 1 : decode_batch) {
  if (precision) model_.set_inference_precision(*precision);
}

std::string LlmSynthesizer::extract_bracketed(const std::string& raw) {
  const auto open = raw.find('[');
  const auto close = raw.rfind(']');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    return raw.substr(open + 1, close - open - 1);
  }
  return raw;
}

std::vector<data::DialogueSet> LlmSynthesizer::synthesize(
    const data::DialogueSet& original, std::size_t count, SynthesisStats* stats) {
  ODLP_TRACE_SCOPE("synth.generate");
  util::Stopwatch sw;
  std::vector<data::DialogueSet> accepted;
  const std::size_t max_attempts = count * 3;
  std::size_t attempts = 0;
  const std::vector<int> prompt = tokenizer_.encode_prompt(
      synthesis_prompt(original), model_.config().max_seq_len / 2);
  llm::BatchedDecodeScheduler scheduler(model_, decode_batch_);
  std::vector<std::size_t> tickets;
  // Attempts decode in waves of up to decode_batch_ concurrent sessions.
  // A wave never overshoots: it holds at most (count - accepted) attempts
  // and each attempt yields at most one accept, so the serial loop could
  // not have stopped mid-wave — gating the results in submission order
  // reproduces its accept set, stats, and rng stream exactly.
  while (accepted.size() < count && attempts < max_attempts) {
    const std::size_t wave =
        std::min(count - accepted.size(), max_attempts - attempts);
    tickets.clear();
    for (std::size_t w = 0; w < wave; ++w) {
      tickets.push_back(scheduler.submit(prompt, sampler_config_, rng_.split()));
    }
    scheduler.run();
    for (std::size_t w = 0; w < wave; ++w) {
      ++attempts;
      const std::string raw = tokenizer_.decode(scheduler.result(tickets[w]));
      const std::string payload = extract_bracketed(raw);
      if (text::normalize_and_split(payload).empty()) {
        if (stats) ++stats->generated;
        // Empty generations never reach the ROUGE gate; count them as
        // generated-and-rejected so registry totals match SynthesisStats.
        SynthMetrics::get().generated.inc();
        SynthMetrics::get().rejected.inc();
        continue;
      }
      data::DialogueSet candidate = original;
      candidate.question = payload;
      if (stats) ++stats->generated;
      if (gated_accepts(sanity_, original, candidate)) {
        if (stats) ++stats->accepted;
        accepted.push_back(std::move(candidate));
      }
    }
  }
  SynthMetrics::get().generate_us.record(sw.elapsed_seconds() * 1e6);
  return accepted;
}

}  // namespace odlp::core
