// Data synthesis (paper §3.3): generate semantically similar dialogue sets
// from each buffered original, filtered by the ROUGE-1 sanity check, right
// before each fine-tuning round.
//
// Two implementations (DESIGN.md §2):
//   * LlmSynthesizer       — sends the paper's fixed paraphrase prompt to the
//                            on-device LLM and parses the bracketed output.
//                            Faithful code path; output quality tracks the
//                            tiny model's ability, so it is exercised in
//                            tests/examples rather than the experiment
//                            harness.
//   * ParaphraseSynthesizer — lexicon-driven paraphraser (synonym swap within
//                            the same sub-lexicon, filler jitter, clause
//                            shuffle) emulating an instruction-following
//                            LLM's paraphrase at a controllable fidelity;
//                            used by the benchmark harness.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sanity_check.h"
#include "data/dialogue.h"
#include "lexicon/lexicon.h"
#include "llm/minillm.h"
#include "llm/sampler.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace odlp::core {

struct SynthesisStats {
  std::size_t generated = 0;  // candidates produced
  std::size_t accepted = 0;   // candidates that passed the sanity check
};

class Synthesizer {
 public:
  virtual ~Synthesizer() = default;

  virtual std::string name() const = 0;

  // Produce up to `count` accepted synthetic variants of `original`.
  // Implementations generate candidates and filter through the sanity check;
  // `stats`, when non-null, accumulates generated/accepted counts.
  virtual std::vector<data::DialogueSet> synthesize(
      const data::DialogueSet& original, std::size_t count,
      SynthesisStats* stats) = 0;
};

// The paper's fixed synthesis prompt (§3.3).
std::string synthesis_prompt(const data::DialogueSet& original);

class ParaphraseSynthesizer final : public Synthesizer {
 public:
  struct Config {
    // Probability of swapping a content word for another from the same
    // sub-lexicon (preserves domain semantics, changes surface form).
    double synonym_swap_rate = 0.3;
    // Probability of dropping / inserting a filler word.
    double filler_jitter_rate = 0.25;
    SanityCheckConfig sanity;
  };

  ParaphraseSynthesizer(const lexicon::LexiconDictionary& dict, util::Rng rng);
  ParaphraseSynthesizer(const lexicon::LexiconDictionary& dict, util::Rng rng,
                        const Config& config);

  std::string name() const override { return "paraphrase"; }
  std::vector<data::DialogueSet> synthesize(const data::DialogueSet& original,
                                            std::size_t count,
                                            SynthesisStats* stats) override;

 private:
  std::string paraphrase_text(const std::string& text);

  const lexicon::LexiconDictionary& dict_;
  util::Rng rng_;
  Config config_;
  RougeSanityCheck sanity_;
};

class LlmSynthesizer final : public Synthesizer {
 public:
  // `precision`, when set, switches the model's inference precision at
  // construction (synthesis is decode-only, so kInt8 runs the whole
  // generation against the quantized base; the setting stays on the model).
  // `decode_batch` is the continuous-batching width: candidate generations
  // are decoded in waves of up to this many concurrent KV-cached sessions.
  // Accepted outputs are bit-identical at every width (each attempt samples
  // from its own rng_.split() stream, consumed in attempt order).
  LlmSynthesizer(llm::MiniLlm& model, const text::Tokenizer& tokenizer,
                 const llm::SamplerConfig& sampler_config, util::Rng rng,
                 const SanityCheckConfig& sanity = SanityCheckConfig{},
                 std::optional<nn::InferencePrecision> precision = std::nullopt,
                 std::size_t decode_batch = 4);

  std::string name() const override { return "llm"; }
  std::vector<data::DialogueSet> synthesize(const data::DialogueSet& original,
                                            std::size_t count,
                                            SynthesisStats* stats) override;

  // Extracts the []-delimited payload from raw LLM output; falls back to the
  // whole output when brackets are missing (small models often drop them).
  static std::string extract_bracketed(const std::string& raw);

 private:
  llm::MiniLlm& model_;
  const text::Tokenizer& tokenizer_;
  llm::SamplerConfig sampler_config_;
  util::Rng rng_;
  RougeSanityCheck sanity_;
  std::size_t decode_batch_;
};

}  // namespace odlp::core
