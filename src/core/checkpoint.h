// CheckpointManager: crash-safe, generation-numbered persistence of all
// on-device personalization state (DESIGN.md §7).
//
// The paper's entire training state is the selection buffer plus the LoRA
// adapter — both bought with scarce user annotations — so losing either to
// a power cut or flash bit rot restarts personalization from zero. The
// manager snapshots model weights, buffer, vocabulary, engine stats, and an
// obs metrics-registry snapshot into a directory per generation:
//
//   <dir>/gen-000007/{model.bin, buffer.bin, vocab.txt, stats.bin,
//                     metrics.bin, MANIFEST}
//
// Every component file carries its own CRC footer (util/atomic_file.h); the
// MANIFEST additionally records each file's size and CRC and is written
// *last*, atomically — a generation without a valid manifest never existed.
// restore() walks generations newest-first and returns the first one whose
// manifest and files all verify; torn, truncated, or bit-flipped
// generations are skipped with a log_warn, never a crash. save() prunes to
// the newest `keep_last` generations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer.h"
#include "core/engine.h"
#include "llm/minillm.h"
#include "resil/retry.h"
#include "text/vocab.h"

namespace odlp::core {

// Resolved component paths of one on-disk generation.
struct CheckpointContents {
  std::uint64_t generation = 0;
  std::string dir;
  std::string model_path;
  std::string buffer_path;
  std::string vocab_path;
  std::string stats_path;
  std::string metrics_path;
};

// Persistable subset of EngineStats. Wall-clock timings live in the obs
// metrics registry, which is checkpointed alongside (metrics.bin), so
// cumulative counters/timings survive reboots too.
void save_engine_stats(const EngineStats& stats, const std::string& path);
EngineStats load_engine_stats(const std::string& path);

class CheckpointManager {
 public:
  // `dir` is created if absent. `keep_last` bounds how many generations
  // survive pruning (>= 1).
  explicit CheckpointManager(std::string dir, std::size_t keep_last = 3);

  const std::string& dir() const { return dir_; }

  // Opt-in self-healing (DESIGN.md §11): when set, every component write
  // during save() and every generation load during restore() runs under a
  // resil::RetryPolicy, so transient storage faults (injected power loss,
  // momentary I/O errors) heal in place with deterministic backoff.
  // Persistent faults still surface: terminal errors rethrow immediately,
  // and exhaustion throws resil::RetryExhausted. Default is the historical
  // fail-fast behaviour (no retry) — crash-safety never depended on it.
  void set_retry(const resil::RetryConfig& config) {
    retry_ = std::make_unique<resil::RetryPolicy>(config);
  }
  void clear_retry() { retry_.reset(); }
  const resil::RetryPolicy* retry() const { return retry_.get(); }

  // Writes one new generation (model + buffer + vocab + stats + metrics
  // snapshot), manifest last, then prunes old generations. Returns the new
  // generation number.
  // Throws on I/O failure — in that case no valid manifest was written and
  // the previous generations remain the restore targets.
  std::uint64_t save(llm::MiniLlm& model, const DataBuffer& buffer,
                     const text::Vocab& vocab, const EngineStats& stats);

  // Generation numbers present on disk (valid or not), ascending.
  std::vector<std::uint64_t> generations() const;

  // Newest generation whose manifest and all component files verify
  // (size + CRC); nullopt when none do. Corrupt generations are skipped
  // with a log_warn.
  std::optional<CheckpointContents> newest_valid() const;

  // Everything restore() recovers besides the model weights (which are
  // loaded directly into the caller's model).
  struct Restored {
    std::uint64_t generation = 0;
    DataBuffer buffer{1};
    text::Vocab vocab;
    EngineStats stats;
  };

  // Restores the newest fully-valid generation: loads weights into `model`,
  // re-imports the persisted metrics snapshot into the global obs registry
  // (legacy generations without metrics.bin restore everything else), and
  // returns the rest. If the newest valid generation fails to parse
  // (e.g. a model-shape mismatch), falls back to older ones. Returns
  // nullopt when no generation is restorable.
  std::optional<Restored> restore(llm::MiniLlm& model) const;

  // Total bytes of one generation's component files + manifest (0 if the
  // generation does not exist). For durability-cost accounting.
  std::uint64_t generation_bytes(std::uint64_t generation) const;

 private:
  CheckpointContents contents_for(std::uint64_t generation) const;
  bool verify_generation(const CheckpointContents& c) const;
  void write_manifest(const CheckpointContents& c) const;
  void prune() const;

  std::string dir_;
  std::size_t keep_last_;
  std::unique_ptr<resil::RetryPolicy> retry_;
};

}  // namespace odlp::core
