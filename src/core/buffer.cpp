#include "core/buffer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace odlp::core {

DataBuffer::DataBuffer(std::size_t capacity_bins) : capacity_(capacity_bins) {
  if (capacity_bins == 0) {
    throw std::invalid_argument("DataBuffer capacity must be at least one bin");
  }
  entries_.reserve(capacity_bins);
  norms_.reserve(capacity_bins);
}

std::size_t DataBuffer::add(BufferEntry entry) {
  assert(!full());
  norms_.push_back(std::sqrt(tensor::sum_squares(entry.embedding)));
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

BufferEntry DataBuffer::replace(std::size_t index, BufferEntry entry) {
  BufferEntry evicted = std::move(entries_.at(index));
  norms_.at(index) = std::sqrt(tensor::sum_squares(entry.embedding));
  entries_.at(index) = std::move(entry);
  return evicted;
}

std::vector<const tensor::Tensor*> DataBuffer::embeddings_in_domain(
    std::size_t domain) const {
  std::vector<const tensor::Tensor*> out;
  for (const auto& e : entries_) {
    if (e.dominant_domain && *e.dominant_domain == domain) {
      out.push_back(&e.embedding);
    }
  }
  return out;
}

std::vector<NormedEmbedding> DataBuffer::normed_embeddings_in_domain(
    std::size_t domain) const {
  std::vector<NormedEmbedding> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const BufferEntry& e = entries_[i];
    if (e.dominant_domain && *e.dominant_domain == domain) {
      out.push_back(NormedEmbedding{&e.embedding, norms_[i]});
    }
  }
  return out;
}

std::size_t DataBuffer::set_bin_cap(std::size_t bins) {
  bins = std::min(std::max<std::size_t>(1, bins), capacity_);
  bin_cap_ = bins;
  std::size_t evicted = 0;
  while (entries_.size() > bins) {
    const std::size_t victim = *oldest_index();
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    norms_.erase(norms_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evicted;
  }
  return evicted;
}

std::optional<std::size_t> DataBuffer::oldest_index() const {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].inserted_at < entries_[best].inserted_at) best = i;
  }
  return best;
}

}  // namespace odlp::core
