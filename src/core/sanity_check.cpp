#include "core/sanity_check.h"

#include "eval/rouge.h"

namespace odlp::core {

double RougeSanityCheck::similarity(const data::DialogueSet& original,
                                    const data::DialogueSet& candidate) const {
  return eval::rouge1_f1(candidate.text_block(), original.text_block());
}

bool RougeSanityCheck::accepts(const data::DialogueSet& original,
                               const data::DialogueSet& candidate) const {
  const double sim = similarity(original, candidate);
  switch (config_.mode) {
    case SanityCheckMode::kRejectBelow:
      return sim >= config_.threshold;
    case SanityCheckMode::kRejectAbove:
      return sim <= config_.threshold;
  }
  return false;
}

}  // namespace odlp::core
