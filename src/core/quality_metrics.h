// The three self-supervised data-quality metrics of the paper (§3.2).
//
//   EOE — Entropy of Embedding (Eq. 1): information content of the
//         per-token embedding sequence, normalized by log(n).
//   DSS — Domain Specific Score (Eq. 2): mean ratio of tokens covered by
//         each domain lexicon.
//   IDD — In-Domain Dissimilarity (Eq. 4/5): mean cosine *dis*similarity to
//         buffered sets sharing the new set's dominant domain (Eq. 3).
//
// None of the metrics uses labels or annotations — this is the
// "self-supervised" property that lets selection run on the raw stream.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lexicon/lexicon.h"
#include "tensor/tensor.h"

namespace odlp::core {

struct NormedEmbedding;  // core/buffer.h

struct QualityScores {
  double eoe = 0.0;
  double dss = 0.0;
  double idd = 0.0;

  // Pareto dominance: every metric strictly higher. The paper replaces a
  // buffered set only when the new set dominates it on all three metrics.
  bool dominates(const QualityScores& other) const {
    return eoe > other.eoe && dss > other.dss && idd > other.idd;
  }
};

// Eq. 1. `token_embeddings` is [n, D] (one row per token). The probability
// distribution p(e_i) is the L2-norm mass of each token's embedding,
// normalized over the sequence; the result is Shannon entropy of that
// distribution divided by log(n). Returns 0 for n <= 1 (a single token
// carries no distributional information) and is always in [0, 1].
double entropy_of_embedding(const tensor::Tensor& token_embeddings);

// Eq. 2 over normalized tokens: mean over domains of |T ∩ l_i| / n.
// Returns 0 for an empty token list.
double domain_specific_score(const std::vector<std::string>& tokens,
                             const lexicon::LexiconDictionary& dict);

// Eq. 3: dominant domain = argmax_i |T ∩ l_i|; nullopt when nothing matches.
std::optional<std::size_t> dominant_domain(
    const std::vector<std::string>& tokens,
    const lexicon::LexiconDictionary& dict);

// Eq. 4/5: mean (1 − cos) between `embedding` [1, D] and each same-domain
// buffered embedding. When the buffer holds no same-domain set (R = 0) the
// set brings an entire new domain, which is maximal novelty — returns 1.
double in_domain_dissimilarity(
    const tensor::Tensor& embedding,
    const std::vector<const tensor::Tensor*>& same_domain_embeddings);

// Incremental form of Eq. 4/5 used on the scoring hot path: the buffered
// embeddings' L2 norms are cached (DataBuffer maintains them through
// add/replace/load) and the candidate's norm is computed once, so each
// cosine reduces to a single dot product. Produces exactly the same value
// as the direct formula — the norm and dot accumulations are identical,
// only factored out (verified in tests/test_parallel_equivalence.cpp).
// `embedding_norm` must equal sqrt(tensor::sum_squares(embedding)).
double in_domain_dissimilarity_cached(
    const tensor::Tensor& embedding, double embedding_norm,
    const std::vector<NormedEmbedding>& same_domain_embeddings);

}  // namespace odlp::core
