#include "core/weighted_policy.h"

namespace odlp::core {

Decision WeightedSumPolicy::offer(const Candidate& candidate,
                                  const DataBuffer& buffer, util::Rng& rng) {
  (void)rng;
  if (!buffer.full()) return Decision::admit_free();
  std::size_t worst = 0;
  double worst_score = score(buffer.entry(0).scores);
  for (std::size_t i = 1; i < buffer.size(); ++i) {
    const double s = score(buffer.entry(i).scores);
    if (s < worst_score) {
      worst_score = s;
      worst = i;
    }
  }
  if (score(candidate.scores) > worst_score) {
    return Decision::admit_replacing(worst);
  }
  return Decision::reject();
}

}  // namespace odlp::core
