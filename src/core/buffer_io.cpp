#include "core/buffer_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace odlp::core {

namespace {

constexpr std::uint32_t kMagic = 0x4642444full;  // "ODBF"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void write_pod(std::FILE* f, const T& value) {
  if (std::fwrite(&value, sizeof(T), 1, f) != 1) {
    throw std::runtime_error("buffer_io: short write");
  }
}

template <typename T>
T read_pod(std::FILE* f) {
  T value{};
  if (std::fread(&value, sizeof(T), 1, f) != 1) {
    throw std::runtime_error("buffer_io: short read");
  }
  return value;
}

void write_string(std::FILE* f, const std::string& s) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
  if (!s.empty() && std::fwrite(s.data(), 1, s.size(), f) != s.size()) {
    throw std::runtime_error("buffer_io: short write");
  }
}

std::string read_string(std::FILE* f) {
  const auto len = read_pod<std::uint32_t>(f);
  // Refuse absurd lengths before allocating (corrupt file defense).
  if (len > (1u << 26)) throw std::runtime_error("buffer_io: string too long");
  std::string s(len, '\0');
  if (len > 0 && std::fread(s.data(), 1, len, f) != len) {
    throw std::runtime_error("buffer_io: short read");
  }
  return s;
}

}  // namespace

void save_buffer(const DataBuffer& buffer, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("buffer_io: cannot open " + path);
  write_pod(f.get(), kMagic);
  write_pod(f.get(), kVersion);
  write_pod<std::uint64_t>(f.get(), buffer.capacity());
  write_pod<std::uint64_t>(f.get(), buffer.size());
  for (const auto& e : buffer.entries()) {
    write_string(f.get(), e.set.question);
    write_string(f.get(), e.set.answer);
    write_string(f.get(), e.set.reference);
    write_pod<std::int32_t>(f.get(), e.set.true_domain);
    write_pod<std::int32_t>(f.get(), e.set.true_subtopic);
    write_pod<std::uint8_t>(f.get(), e.set.is_noise ? 1 : 0);
    write_pod<std::uint64_t>(f.get(), e.set.stream_position);
    write_pod<std::uint64_t>(f.get(), e.inserted_at);
    write_pod<std::uint8_t>(f.get(), e.annotated ? 1 : 0);
    write_pod<std::int64_t>(
        f.get(), e.dominant_domain ? static_cast<std::int64_t>(*e.dominant_domain)
                                   : -1);
    write_pod<double>(f.get(), e.scores.eoe);
    write_pod<double>(f.get(), e.scores.dss);
    write_pod<double>(f.get(), e.scores.idd);
    write_pod<std::uint64_t>(f.get(), e.embedding.cols());
    if (e.embedding.size() > 0 &&
        std::fwrite(e.embedding.data(), sizeof(float), e.embedding.size(),
                    f.get()) != e.embedding.size()) {
      throw std::runtime_error("buffer_io: short write");
    }
  }
}

DataBuffer load_buffer(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("buffer_io: cannot open " + path);
  if (read_pod<std::uint32_t>(f.get()) != kMagic) {
    throw std::runtime_error("buffer_io: bad magic");
  }
  if (read_pod<std::uint32_t>(f.get()) != kVersion) {
    throw std::runtime_error("buffer_io: unsupported version");
  }
  const auto capacity = read_pod<std::uint64_t>(f.get());
  const auto count = read_pod<std::uint64_t>(f.get());
  if (capacity == 0 || count > capacity) {
    throw std::runtime_error("buffer_io: inconsistent sizes");
  }
  DataBuffer buffer(capacity);
  for (std::uint64_t i = 0; i < count; ++i) {
    BufferEntry e;
    e.set.question = read_string(f.get());
    e.set.answer = read_string(f.get());
    e.set.reference = read_string(f.get());
    e.set.true_domain = read_pod<std::int32_t>(f.get());
    e.set.true_subtopic = read_pod<std::int32_t>(f.get());
    e.set.is_noise = read_pod<std::uint8_t>(f.get()) != 0;
    e.set.stream_position = read_pod<std::uint64_t>(f.get());
    e.inserted_at = read_pod<std::uint64_t>(f.get());
    e.annotated = read_pod<std::uint8_t>(f.get()) != 0;
    const auto domain = read_pod<std::int64_t>(f.get());
    if (domain >= 0) e.dominant_domain = static_cast<std::size_t>(domain);
    e.scores.eoe = read_pod<double>(f.get());
    e.scores.dss = read_pod<double>(f.get());
    e.scores.idd = read_pod<double>(f.get());
    const auto cols = read_pod<std::uint64_t>(f.get());
    if (cols > (1u << 20)) throw std::runtime_error("buffer_io: embedding too wide");
    e.embedding = tensor::Tensor(1, cols);
    if (cols > 0 && std::fread(e.embedding.data(), sizeof(float), cols, f.get()) !=
                        cols) {
      throw std::runtime_error("buffer_io: short read");
    }
    buffer.add(std::move(e));
  }
  return buffer;
}

}  // namespace odlp::core
