#include "core/buffer_io.h"

#include <cstdint>
#include <cstring>
#include <string_view>

#include "io/obsf.h"
#include "util/atomic_file.h"

namespace odlp::core {

namespace {

constexpr std::uint32_t kMagic = 0x4642444full;  // "ODBF"
constexpr std::uint32_t kVersionLegacy = 1;      // unchecksummed, read-only
constexpr std::uint32_t kVersion = 2;            // CRC footer, atomic write

// Hard per-field ceilings, enforced *in addition* to the remaining-bytes
// check, so a corrupt length prefix can never trigger a huge allocation.
constexpr std::uint64_t kMaxStringBytes = 1u << 26;   // 64 MiB
constexpr std::uint64_t kMaxEmbeddingCols = 1u << 20;
constexpr std::uint64_t kMaxCapacity = 1u << 24;

void write_string(util::AtomicFileWriter& out, const std::string& s) {
  out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), s.size());
}

std::string read_string(util::ByteReader& in) {
  const auto len = in.pod<std::uint32_t>();
  if (len > kMaxStringBytes) {
    throw util::CorruptionError("buffer_io: string length " +
                                std::to_string(len) + " exceeds cap");
  }
  return in.str(len);  // ByteReader bounds-checks against remaining bytes
}

// Entry payload shared by v1 and v2 (the versions differ only in framing).
void read_entries(util::ByteReader& in, DataBuffer& buffer,
                  std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    BufferEntry e;
    e.set.question = read_string(in);
    e.set.answer = read_string(in);
    e.set.reference = read_string(in);
    e.set.true_domain = in.pod<std::int32_t>();
    e.set.true_subtopic = in.pod<std::int32_t>();
    e.set.is_noise = in.pod<std::uint8_t>() != 0;
    e.set.stream_position = in.pod<std::uint64_t>();
    e.inserted_at = in.pod<std::uint64_t>();
    e.annotated = in.pod<std::uint8_t>() != 0;
    const auto domain = in.pod<std::int64_t>();
    if (domain >= 0) e.dominant_domain = static_cast<std::size_t>(domain);
    e.scores.eoe = in.pod<double>();
    e.scores.dss = in.pod<double>();
    e.scores.idd = in.pod<double>();
    const auto cols = in.pod<std::uint64_t>();
    if (cols > kMaxEmbeddingCols ||
        cols * sizeof(float) > in.remaining()) {
      throw util::CorruptionError(
          "buffer_io: embedding width " + std::to_string(cols) +
          " inconsistent with remaining file size");
    }
    e.embedding = tensor::Tensor(1, cols);
    in.read(e.embedding.data(), cols * sizeof(float));
    buffer.add(std::move(e));
  }
}

// --- v3 (OBSF columnar) ---

// Header metadata: "odlp.buffer.v3;capacity=<N>;count=<M>". Capacity sizes
// the reconstructed buffer; count lets both strict and recover loads know
// how many rows the complete file held.
constexpr std::string_view kBufferMetaPrefix = "odlp.buffer.v3;";

io::Schema buffer_schema(std::uint64_t capacity, std::uint64_t count) {
  io::Schema s;
  s.meta = std::string(kBufferMetaPrefix) +
           "capacity=" + std::to_string(capacity) +
           ";count=" + std::to_string(count);
  s.columns = {
      {"question", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"answer", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"reference", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"true_domain", io::ColumnType::kI64, io::ColumnCodec::kZoH},
      {"true_subtopic", io::ColumnType::kI64, io::ColumnCodec::kZoH},
      {"is_noise", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"position", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"inserted_at", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"annotated", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"dominant_domain", io::ColumnType::kI64, io::ColumnCodec::kZoH},
      {"eoe", io::ColumnType::kF64, io::ColumnCodec::kFlat},
      {"dss", io::ColumnType::kF64, io::ColumnCodec::kFlat},
      {"idd", io::ColumnType::kF64, io::ColumnCodec::kFlat},
      {"embedding", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
  };
  return s;
}

// Parses "...;key=<u64>..." out of the v3 metadata string.
std::uint64_t meta_field(const std::string& meta, const std::string& key) {
  const std::string needle = key + "=";
  const std::size_t at = meta.find(needle);
  if (at == std::string::npos) {
    throw util::CorruptionError("buffer_io: v3 metadata missing " + key);
  }
  std::uint64_t v = 0;
  std::size_t i = at + needle.size();
  if (i >= meta.size() || meta[i] < '0' || meta[i] > '9') {
    throw util::CorruptionError("buffer_io: v3 metadata bad " + key);
  }
  for (; i < meta.size() && meta[i] >= '0' && meta[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(meta[i] - '0');
  }
  return v;
}

// Appends the rows of one decoded OBSF block into the buffer.
void add_block_entries(const io::ObsfReader& r, DataBuffer& buffer) {
  for (std::size_t k = 0; k < r.rows(); ++k) {
    if (buffer.full()) {
      throw util::CorruptionError("buffer_io: more rows than capacity");
    }
    BufferEntry e;
    e.set.question = r.col_bytes(0)[k];
    e.set.answer = r.col_bytes(1)[k];
    e.set.reference = r.col_bytes(2)[k];
    e.set.true_domain = static_cast<int>(r.col_i64(3)[k]);
    e.set.true_subtopic = static_cast<int>(r.col_i64(4)[k]);
    e.set.is_noise = r.col_u8(5)[k] != 0;
    e.set.stream_position = static_cast<std::size_t>(r.col_u64(6)[k]);
    e.inserted_at = static_cast<std::size_t>(r.col_u64(7)[k]);
    e.annotated = r.col_u8(8)[k] != 0;
    const std::int64_t domain = r.col_i64(9)[k];
    if (domain >= 0) e.dominant_domain = static_cast<std::size_t>(domain);
    e.scores.eoe = r.col_f64(10)[k];
    e.scores.dss = r.col_f64(11)[k];
    e.scores.idd = r.col_f64(12)[k];
    const std::string& emb = r.col_bytes(13)[k];
    if (emb.size() % sizeof(float) != 0 ||
        emb.size() / sizeof(float) > kMaxEmbeddingCols) {
      throw util::CorruptionError("buffer_io: bad embedding byte length " +
                                  std::to_string(emb.size()));
    }
    e.embedding = tensor::Tensor(1, emb.size() / sizeof(float));
    std::memcpy(e.embedding.data(), emb.data(), emb.size());
    buffer.add(std::move(e));
  }
}

DataBuffer make_buffer_for_meta(const std::string& meta,
                                std::uint64_t& capacity,
                                std::uint64_t& count) {
  if (meta.compare(0, kBufferMetaPrefix.size(), kBufferMetaPrefix) != 0) {
    throw util::CorruptionError("buffer_io: not a v3 buffer container");
  }
  capacity = meta_field(meta, "capacity");
  count = meta_field(meta, "count");
  if (capacity == 0 || capacity > kMaxCapacity || count > capacity) {
    throw util::CorruptionError("buffer_io: inconsistent capacity/count");
  }
  return DataBuffer(capacity);
}

DataBuffer load_buffer_v3(const std::string& path) {
  io::ObsfReader r(path);
  std::uint64_t capacity = 0, count = 0;
  DataBuffer buffer = make_buffer_for_meta(r.schema().meta, capacity, count);
  while (r.next_block()) add_block_entries(r, buffer);
  if (buffer.size() != count) {
    throw util::CorruptionError("buffer_io: row count mismatch: header " +
                                std::to_string(count) + ", decoded " +
                                std::to_string(buffer.size()));
  }
  return buffer;
}

DataBuffer load_buffer_legacy(const std::string& path,
                              const std::vector<unsigned char>& bytes,
                              std::uint32_t version) {
  std::size_t body_end = bytes.size();
  if (version == kVersion) {
    // v2: verify the CRC footer over header+body before parsing anything.
    body_end = util::check_footer(bytes, "buffer_io");
  } else if (version != kVersionLegacy) {
    throw util::CorruptionError("buffer_io: unsupported version " +
                                std::to_string(version));
  }

  util::ByteReader in(bytes.data(), body_end, "buffer_io " + path);
  in.pod<std::uint32_t>();  // magic, already validated
  in.pod<std::uint32_t>();  // version
  const auto capacity = in.pod<std::uint64_t>();
  const auto count = in.pod<std::uint64_t>();
  if (capacity == 0 || capacity > kMaxCapacity || count > capacity) {
    throw util::CorruptionError("buffer_io: inconsistent capacity/count");
  }
  DataBuffer buffer(capacity);
  read_entries(in, buffer, count);
  if (version == kVersion && in.remaining() != 0) {
    throw util::CorruptionError("buffer_io: trailing bytes after entries");
  }
  return buffer;
}

}  // namespace

void save_buffer(const DataBuffer& buffer, const std::string& path) {
  // Smaller blocks than the container default: recovery walks back to the
  // last intact block, so block granularity bounds how many entries a torn
  // checkpoint tail can cost. 256 bins ≈ one paper-sized buffer per block.
  io::ObsfWriter::Options opts;
  opts.block_rows = 256;
  io::ObsfWriter w(path, buffer_schema(buffer.capacity(), buffer.size()),
                   opts);
  for (const auto& e : buffer.entries()) {
    w.append_bytes(e.set.question);
    w.append_bytes(e.set.answer);
    w.append_bytes(e.set.reference);
    w.append_i64(e.set.true_domain);
    w.append_i64(e.set.true_subtopic);
    w.append_u8(e.set.is_noise ? 1 : 0);
    w.append_u64(e.set.stream_position);
    w.append_u64(e.inserted_at);
    w.append_u8(e.annotated ? 1 : 0);
    w.append_i64(e.dominant_domain
                     ? static_cast<std::int64_t>(*e.dominant_domain)
                     : -1);
    w.append_f64(e.scores.eoe);
    w.append_f64(e.scores.dss);
    w.append_f64(e.scores.idd);
    w.append_bytes(std::string_view(
        reinterpret_cast<const char*>(e.embedding.data()),
        e.embedding.size() * sizeof(float)));
    w.end_row();
  }
  w.finish();
}

void save_buffer_legacy(const DataBuffer& buffer, const std::string& path) {
  util::AtomicFileWriter out(path);
  out.write_pod(kMagic);
  out.write_pod(kVersion);
  out.write_pod<std::uint64_t>(buffer.capacity());
  out.write_pod<std::uint64_t>(buffer.size());
  for (const auto& e : buffer.entries()) {
    write_string(out, e.set.question);
    write_string(out, e.set.answer);
    write_string(out, e.set.reference);
    out.write_pod<std::int32_t>(e.set.true_domain);
    out.write_pod<std::int32_t>(e.set.true_subtopic);
    out.write_pod<std::uint8_t>(e.set.is_noise ? 1 : 0);
    out.write_pod<std::uint64_t>(e.set.stream_position);
    out.write_pod<std::uint64_t>(e.inserted_at);
    out.write_pod<std::uint8_t>(e.annotated ? 1 : 0);
    out.write_pod<std::int64_t>(
        e.dominant_domain ? static_cast<std::int64_t>(*e.dominant_domain) : -1);
    out.write_pod<double>(e.scores.eoe);
    out.write_pod<double>(e.scores.dss);
    out.write_pod<double>(e.scores.idd);
    out.write_pod<std::uint64_t>(e.embedding.cols());
    out.write(e.embedding.data(), e.embedding.size() * sizeof(float));
  }
  out.write_footer();
  out.commit();
}

DataBuffer load_buffer(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  if (bytes.size() < 2 * sizeof(std::uint32_t)) {
    throw util::CorruptionError("buffer_io: file too small for header");
  }
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic == io::kObsfMagic) return load_buffer_v3(path);
  if (magic != kMagic) throw util::CorruptionError("buffer_io: bad magic");
  return load_buffer_legacy(path, bytes, version);
}

BufferRecovery recover_buffer(const std::string& path) {
  {
    const std::vector<unsigned char> bytes = util::read_file(path);
    std::uint32_t magic = 0;
    if (bytes.size() >= sizeof(magic)) {
      std::memcpy(&magic, bytes.data(), sizeof(magic));
    }
    if (magic != io::kObsfMagic) {
      // Legacy formats carry one whole-file checksum: nothing to walk back
      // to, so recovery degenerates to an ordinary (all-or-nothing) load.
      BufferRecovery rec{load_buffer(path), 0, 0, false};
      rec.rows_recovered = rec.buffer.size();
      rec.rows_expected = rec.buffer.size();
      return rec;
    }
  }

  io::ObsfReader::Options opts;
  opts.recover = true;
  io::ObsfReader r(path, opts);  // header damage still throws: no schema
  std::uint64_t capacity = 0, count = 0;
  BufferRecovery rec{make_buffer_for_meta(r.schema().meta, capacity, count),
                     0, 0, false};
  rec.rows_expected = static_cast<std::size_t>(count);
  while (r.next_block()) add_block_entries(r, rec.buffer);
  rec.rows_recovered = rec.buffer.size();
  rec.truncated = r.truncated() || rec.rows_recovered != rec.rows_expected;
  return rec;
}

}  // namespace odlp::core
