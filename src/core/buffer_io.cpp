#include "core/buffer_io.h"

#include <cstdint>
#include <cstring>

#include "util/atomic_file.h"

namespace odlp::core {

namespace {

constexpr std::uint32_t kMagic = 0x4642444full;  // "ODBF"
constexpr std::uint32_t kVersionLegacy = 1;      // unchecksummed, read-only
constexpr std::uint32_t kVersion = 2;            // CRC footer, atomic write

// Hard per-field ceilings, enforced *in addition* to the remaining-bytes
// check, so a corrupt length prefix can never trigger a huge allocation.
constexpr std::uint64_t kMaxStringBytes = 1u << 26;   // 64 MiB
constexpr std::uint64_t kMaxEmbeddingCols = 1u << 20;

void write_string(util::AtomicFileWriter& out, const std::string& s) {
  out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), s.size());
}

std::string read_string(util::ByteReader& in) {
  const auto len = in.pod<std::uint32_t>();
  if (len > kMaxStringBytes) {
    throw util::CorruptionError("buffer_io: string length " +
                                std::to_string(len) + " exceeds cap");
  }
  return in.str(len);  // ByteReader bounds-checks against remaining bytes
}

// Entry payload shared by v1 and v2 (the versions differ only in framing).
void read_entries(util::ByteReader& in, DataBuffer& buffer,
                  std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    BufferEntry e;
    e.set.question = read_string(in);
    e.set.answer = read_string(in);
    e.set.reference = read_string(in);
    e.set.true_domain = in.pod<std::int32_t>();
    e.set.true_subtopic = in.pod<std::int32_t>();
    e.set.is_noise = in.pod<std::uint8_t>() != 0;
    e.set.stream_position = in.pod<std::uint64_t>();
    e.inserted_at = in.pod<std::uint64_t>();
    e.annotated = in.pod<std::uint8_t>() != 0;
    const auto domain = in.pod<std::int64_t>();
    if (domain >= 0) e.dominant_domain = static_cast<std::size_t>(domain);
    e.scores.eoe = in.pod<double>();
    e.scores.dss = in.pod<double>();
    e.scores.idd = in.pod<double>();
    const auto cols = in.pod<std::uint64_t>();
    if (cols > kMaxEmbeddingCols ||
        cols * sizeof(float) > in.remaining()) {
      throw util::CorruptionError(
          "buffer_io: embedding width " + std::to_string(cols) +
          " inconsistent with remaining file size");
    }
    e.embedding = tensor::Tensor(1, cols);
    in.read(e.embedding.data(), cols * sizeof(float));
    buffer.add(std::move(e));
  }
}

}  // namespace

void save_buffer(const DataBuffer& buffer, const std::string& path) {
  util::AtomicFileWriter out(path);
  out.write_pod(kMagic);
  out.write_pod(kVersion);
  out.write_pod<std::uint64_t>(buffer.capacity());
  out.write_pod<std::uint64_t>(buffer.size());
  for (const auto& e : buffer.entries()) {
    write_string(out, e.set.question);
    write_string(out, e.set.answer);
    write_string(out, e.set.reference);
    out.write_pod<std::int32_t>(e.set.true_domain);
    out.write_pod<std::int32_t>(e.set.true_subtopic);
    out.write_pod<std::uint8_t>(e.set.is_noise ? 1 : 0);
    out.write_pod<std::uint64_t>(e.set.stream_position);
    out.write_pod<std::uint64_t>(e.inserted_at);
    out.write_pod<std::uint8_t>(e.annotated ? 1 : 0);
    out.write_pod<std::int64_t>(
        e.dominant_domain ? static_cast<std::int64_t>(*e.dominant_domain) : -1);
    out.write_pod<double>(e.scores.eoe);
    out.write_pod<double>(e.scores.dss);
    out.write_pod<double>(e.scores.idd);
    out.write_pod<std::uint64_t>(e.embedding.cols());
    out.write(e.embedding.data(), e.embedding.size() * sizeof(float));
  }
  out.write_footer();
  out.commit();
}

DataBuffer load_buffer(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  if (bytes.size() < 2 * sizeof(std::uint32_t)) {
    throw util::CorruptionError("buffer_io: file too small for header");
  }
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic != kMagic) throw util::CorruptionError("buffer_io: bad magic");

  std::size_t body_end = bytes.size();
  if (version == kVersion) {
    // v2: verify the CRC footer over header+body before parsing anything.
    body_end = util::check_footer(bytes, "buffer_io");
  } else if (version != kVersionLegacy) {
    throw util::CorruptionError("buffer_io: unsupported version " +
                                std::to_string(version));
  }

  util::ByteReader in(bytes.data(), body_end, "buffer_io");
  in.pod<std::uint32_t>();  // magic, already validated
  in.pod<std::uint32_t>();  // version
  const auto capacity = in.pod<std::uint64_t>();
  const auto count = in.pod<std::uint64_t>();
  if (capacity == 0 || capacity > (1u << 24) || count > capacity) {
    throw util::CorruptionError("buffer_io: inconsistent capacity/count");
  }
  DataBuffer buffer(capacity);
  read_entries(in, buffer, count);
  if (version == kVersion && in.remaining() != 0) {
    throw util::CorruptionError("buffer_io: trailing bytes after entries");
  }
  return buffer;
}

}  // namespace odlp::core
