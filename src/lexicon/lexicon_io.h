// Lexicon dictionary file format — lets integrators ship their own domains
// of interest to the device instead of (or on top of) the built-ins.
//
// Format: line-oriented text.
//   # comment                          (ignored, as are blank lines)
//   [domain_name]                      starts a domain
//   sublexicon_name: word word word    one sub-lexicon per line
//
// Words are normalized (lowercased, punctuation stripped) on load.
#pragma once

#include <istream>
#include <string>

#include "lexicon/lexicon.h"

namespace odlp::lexicon {

// Parses a dictionary from a stream / file. Throws std::runtime_error with a
// line number on malformed input (words before any [domain], a sub-lexicon
// line without ':', an empty domain).
LexiconDictionary parse_dictionary(std::istream& in);
LexiconDictionary load_dictionary(const std::string& path);

// Serializes in the same format (round-trips through parse_dictionary).
std::string format_dictionary(const LexiconDictionary& dict);
void save_dictionary(const LexiconDictionary& dict, const std::string& path);

// Merge: domains from `extra` are appended to `base`; a domain whose name
// already exists in `base` replaces it (device-side lexicon updates).
LexiconDictionary merge_dictionaries(const LexiconDictionary& base,
                                     const LexiconDictionary& extra);

}  // namespace odlp::lexicon
