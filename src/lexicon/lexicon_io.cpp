#include "lexicon/lexicon_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "text/normalize.h"
#include "util/strings.h"

namespace odlp::lexicon {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("lexicon_io: line " + std::to_string(line_no) + ": " +
                           why);
}

}  // namespace

LexiconDictionary parse_dictionary(std::istream& in) {
  std::vector<Domain> domains;
  std::string current_name;
  std::vector<SubLexicon> current_subs;

  auto flush_domain = [&](std::size_t line_no) {
    if (current_name.empty()) return;
    if (current_subs.empty()) fail(line_no, "domain '" + current_name + "' is empty");
    domains.emplace_back(current_name, std::move(current_subs));
    current_subs.clear();
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') fail(line_no, "unterminated [domain] header");
      flush_domain(line_no);
      current_name = std::string(util::trim(trimmed.substr(1, trimmed.size() - 2)));
      if (current_name.empty()) fail(line_no, "empty domain name");
      continue;
    }
    if (current_name.empty()) fail(line_no, "words before any [domain] header");
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      fail(line_no, "expected 'sublexicon: words...'");
    }
    SubLexicon sub;
    sub.name = std::string(util::trim(trimmed.substr(0, colon)));
    if (sub.name.empty()) fail(line_no, "empty sub-lexicon name");
    for (const auto& w : text::normalize_and_split(trimmed.substr(colon + 1))) {
      sub.words.push_back(w);
    }
    if (sub.words.empty()) fail(line_no, "sub-lexicon '" + sub.name + "' has no words");
    current_subs.push_back(std::move(sub));
  }
  flush_domain(line_no + 1);
  if (domains.empty()) fail(line_no + 1, "no domains in input");
  return LexiconDictionary(std::move(domains));
}

LexiconDictionary load_dictionary(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("lexicon_io: cannot open " + path);
  return parse_dictionary(in);
}

std::string format_dictionary(const LexiconDictionary& dict) {
  std::ostringstream out;
  for (const auto& domain : dict.domains()) {
    out << '[' << domain.name() << "]\n";
    for (const auto& sub : domain.sublexicons()) {
      out << sub.name << ':';
      for (const auto& w : sub.words) out << ' ' << w;
      out << '\n';
    }
    out << '\n';
  }
  return out.str();
}

void save_dictionary(const LexiconDictionary& dict, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("lexicon_io: cannot open " + path);
  out << format_dictionary(dict);
  if (!out) throw std::runtime_error("lexicon_io: write failed for " + path);
}

LexiconDictionary merge_dictionaries(const LexiconDictionary& base,
                                     const LexiconDictionary& extra) {
  std::vector<Domain> merged;
  for (const auto& domain : base.domains()) {
    if (extra.index_of(domain.name())) continue;  // replaced below
    merged.push_back(domain);
  }
  for (const auto& domain : extra.domains()) merged.push_back(domain);
  return LexiconDictionary(std::move(merged));
}

}  // namespace odlp::lexicon
