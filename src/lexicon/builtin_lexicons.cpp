// Built-in on-device lexicon dictionary.
//
// Six domains mirroring the paper's Table 1 structure (named sub-lexicons
// under each domain) and covering the six evaluation datasets: medical
// (MedDialog), emotion (Empathetic-Dialog), prosocial (Prosocial-Dialog),
// reasoning (OPENORCA), daily (ALPACA/DOLLY chit-chat half) and glove
// (general content words, the paper's GloVe-style catch-all).
//
// The same word lists are the generative vocabulary of the synthetic dataset
// profiles (src/data/profiles.cpp), which is what makes DSS and the
// dominant-domain statistics of the generated streams behave like the
// paper's real datasets.
#include "lexicon/lexicon.h"

namespace odlp::lexicon {

namespace {

LexiconDictionary build_builtin() {
  std::vector<Domain> domains;

  domains.emplace_back(
      "medical",
      std::vector<SubLexicon>{
          {"Admin",
           {"dose", "vial", "inhale", "inject", "ml", "pills", "ingredient",
            "tablet", "capsule", "syringe", "prescription", "refill", "dosage",
            "ointment", "topical", "oral", "injection", "infusion"}},
          {"Anatomy",
           {"pelvis", "arm", "sinus", "breast", "chest", "lymph", "tonsil",
            "liver", "kidney", "spine", "cornea", "artery", "vein", "tendon",
            "abdomen", "thyroid", "retina", "femur", "cartilage", "nerve"}},
          {"Drug",
           {"acova", "actonel", "cartia", "emgel", "nyquil", "benadryl",
            "midol", "pepto", "ritalin", "ibuprofen", "aspirin", "insulin",
            "amoxicillin", "metformin", "lisinopril", "statin", "antibiotic",
            "antihistamine", "steroid", "vaccine"}},
          {"Condition",
           {"fever", "migraine", "diabetes", "asthma", "allergy", "infection",
            "fracture", "hypertension", "anemia", "arthritis", "thrombosis",
            "fibrillation", "symptomatic", "inflammation", "rash", "nausea",
            "fatigue", "dizziness", "insomnia", "bronchitis"}},
      });

  domains.emplace_back(
      "emotion",
      std::vector<SubLexicon>{
          {"Fear",
           {"bunker", "cartridge", "cautionary", "chasm", "cleave", "afraid",
            "terrified", "anxious", "panic", "dread", "nightmare", "worried",
            "frightened", "nervous", "scared", "uneasy"}},
          {"Surprise",
           {"amazingly", "hilarious", "lucky", "merriment", "astonished",
            "unexpected", "stunned", "shocked", "startled", "marvel",
            "incredible", "sudden", "unbelievable", "wow"}},
          {"Trust",
           {"advocate", "alliance", "canons", "cohesion", "loyal", "faithful",
            "reliable", "honest", "devoted", "sincere", "genuine", "steadfast",
            "dependable", "trustworthy"}},
          {"Sadness",
           {"grief", "lonely", "heartbroken", "sorrow", "mourning", "tearful",
            "depressed", "miserable", "regret", "melancholy", "despair",
            "gloomy", "homesick", "nostalgic"}},
          {"Joy",
           {"delighted", "cheerful", "thrilled", "grateful", "excited",
            "joyful", "proud", "content", "hopeful", "ecstatic", "blissful",
            "glad", "warmhearted", "uplifted"}},
      });

  domains.emplace_back(
      "prosocial",
      std::vector<SubLexicon>{
          {"Norms",
           {"respectful", "considerate", "polite", "courteous", "fairness",
            "etiquette", "consent", "boundary", "apologize", "responsibility",
            "accountable", "integrity", "empathize", "tolerant"}},
          {"Safety",
           {"harmful", "dangerous", "risky", "unsafe", "caution", "warning",
            "protect", "prevention", "emergency", "hazard", "vulnerable",
            "wellbeing", "supportive", "helpline"}},
          {"Conflict",
           {"argument", "disagreement", "bully", "harass", "insult", "offend",
            "discriminate", "prejudice", "stereotype", "gossip", "rumor",
            "exclude", "confront", "reconcile"}},
      });

  domains.emplace_back(
      "reasoning",
      std::vector<SubLexicon>{
          {"Logic",
           {"premise", "conclusion", "hypothesis", "deduce", "infer",
            "therefore", "implies", "contradiction", "proof", "axiom",
            "lemma", "syllogism", "valid", "fallacy"}},
          {"Math",
           {"equation", "integer", "fraction", "multiply", "divide",
            "remainder", "probability", "percentage", "geometry", "algebra",
            "variable", "polynomial", "derivative", "matrix"}},
          {"Science",
           {"molecule", "photosynthesis", "gravity", "electron", "genome",
            "ecosystem", "velocity", "momentum", "catalyst", "osmosis",
            "neutron", "quantum", "entropy", "evolution"}},
      });

  domains.emplace_back(
      "daily",
      std::vector<SubLexicon>{
          {"Home",
           {"kitchen", "recipe", "laundry", "garden", "grocery", "furniture",
            "cleaning", "breakfast", "dinner", "household", "closet",
            "backyard", "plumbing", "decorate"}},
          {"Travel",
           {"itinerary", "passport", "luggage", "airport", "hotel", "museum",
            "sightseeing", "reservation", "destination", "souvenir", "flight",
            "roadtrip", "hiking", "beach"}},
          {"Work",
           {"meeting", "deadline", "resume", "interview", "colleague",
            "project", "schedule", "email", "presentation", "promotion",
            "salary", "office", "manager", "teamwork"}},
      });

  domains.emplace_back(
      "glove",
      std::vector<SubLexicon>{
          {"GloVeTW26",
           {"extreme", "potential", "activity", "impact", "movement",
            "significant", "context", "pattern", "structure", "dynamic",
            "element", "factor", "feature", "process"}},
          {"GloVeCC41",
           {"analysis", "approach", "concept", "framework", "method",
            "principle", "strategy", "system", "theory", "model",
            "perspective", "dimension", "mechanism", "function"}},
          {"GloVeTW75",
           {"describe", "explain", "compare", "summarize", "classify",
            "identify", "generate", "translate", "outline", "paraphrase",
            "evaluate", "recommend", "organize", "brainstorm"}},
      });

  return LexiconDictionary(std::move(domains));
}

}  // namespace

const LexiconDictionary& builtin_dictionary() {
  static const LexiconDictionary dict = build_builtin();
  return dict;
}

const std::vector<std::string>& filler_words() {
  static const std::vector<std::string> words = {
      "the",  "a",     "an",    "and",   "or",    "but",  "so",    "well",
      "okay", "yes",   "no",    "maybe", "hmm",   "oh",   "right", "sure",
      "just", "like",  "you",   "know",  "i",     "mean", "it",    "is",
      "was",  "that",  "this",  "then",  "there", "here", "very",  "really",
      "good", "fine",  "nice",  "thanks", "hello", "hi",  "bye",   "see",
      "what", "about", "think", "today", "again", "also", "still", "anyway"};
  return words;
}

}  // namespace odlp::lexicon
