// Domain lexicon dictionary (paper §2.1.1, Table 1).
//
// The device ships a pre-stored dictionary of domains of interest; each
// domain groups named sub-lexicons (e.g. medical → {Admin, Anatomy, Drug}).
// The DSS metric measures token overlap of a dialogue set against every
// domain; the dominant domain (Eq. 3) keys the IDD metric and the buffer's
// per-set domain tag.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace odlp::lexicon {

struct SubLexicon {
  std::string name;                 // e.g. "Drug", "Fear"
  std::vector<std::string> words;
};

class Domain {
 public:
  Domain(std::string name, std::vector<SubLexicon> sublexicons);

  const std::string& name() const { return name_; }
  const std::vector<SubLexicon>& sublexicons() const { return sublexicons_; }

  bool contains(const std::string& word) const { return all_words_.count(word) != 0; }
  std::size_t vocabulary_size() const { return all_words_.size(); }

  // Number of tokens of `tokens` that belong to this domain (multiset
  // semantics: repeated tokens count repeatedly, matching |T ∩ l_i| over the
  // token sequence T).
  std::size_t overlap(const std::vector<std::string>& tokens) const;

  // All words, flattened (deterministic order: sublexicon order, then word
  // order as constructed).
  const std::vector<std::string>& flattened() const { return flattened_; }

 private:
  std::string name_;
  std::vector<SubLexicon> sublexicons_;
  std::unordered_set<std::string> all_words_;
  std::vector<std::string> flattened_;
};

class LexiconDictionary {
 public:
  explicit LexiconDictionary(std::vector<Domain> domains);

  std::size_t num_domains() const { return domains_.size(); }
  const Domain& domain(std::size_t i) const { return domains_.at(i); }
  const std::vector<Domain>& domains() const { return domains_; }

  // Index of the domain with the given name, if present.
  std::optional<std::size_t> index_of(std::string_view name) const;

  // Per-domain overlap counts |T ∩ l_i| over normalized tokens.
  std::vector<std::size_t> overlaps(const std::vector<std::string>& tokens) const;

  // Dominant domain (Eq. 3): argmax overlap. Ties break toward the lower
  // index for determinism; returns nullopt when no token matches any domain.
  std::optional<std::size_t> dominant_domain(
      const std::vector<std::string>& tokens) const;

 private:
  std::vector<Domain> domains_;
};

// The built-in on-device dictionary: medical, emotion, prosocial, reasoning,
// daily, glove (general). Word lists double as the generative vocabulary of
// the synthetic dataset profiles so DSS/dominant-domain statistics behave
// like the paper's real datasets.
const LexiconDictionary& builtin_dictionary();

// Stopword-like filler words that belong to no domain (used by the data
// generators to produce uninformative dialogue).
const std::vector<std::string>& filler_words();

}  // namespace odlp::lexicon
