#include "lexicon/lexicon.h"

#include <algorithm>

namespace odlp::lexicon {

Domain::Domain(std::string name, std::vector<SubLexicon> sublexicons)
    : name_(std::move(name)), sublexicons_(std::move(sublexicons)) {
  for (const auto& sub : sublexicons_) {
    for (const auto& w : sub.words) {
      if (all_words_.insert(w).second) flattened_.push_back(w);
    }
  }
}

std::size_t Domain::overlap(const std::vector<std::string>& tokens) const {
  std::size_t count = 0;
  for (const auto& t : tokens) {
    if (contains(t)) ++count;
  }
  return count;
}

LexiconDictionary::LexiconDictionary(std::vector<Domain> domains)
    : domains_(std::move(domains)) {}

std::optional<std::size_t> LexiconDictionary::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (domains_[i].name() == name) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> LexiconDictionary::overlaps(
    const std::vector<std::string>& tokens) const {
  std::vector<std::size_t> out(domains_.size(), 0);
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    out[i] = domains_[i].overlap(tokens);
  }
  return out;
}

std::optional<std::size_t> LexiconDictionary::dominant_domain(
    const std::vector<std::string>& tokens) const {
  const auto counts = overlaps(tokens);
  std::size_t best = 0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > best_count) {
      best_count = counts[i];
      best = i;
    }
  }
  if (best_count == 0) return std::nullopt;
  return best;
}

}  // namespace odlp::lexicon
