file(REMOVE_RECURSE
  "CMakeFiles/example_buffer_explorer.dir/buffer_explorer.cpp.o"
  "CMakeFiles/example_buffer_explorer.dir/buffer_explorer.cpp.o.d"
  "example_buffer_explorer"
  "example_buffer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_buffer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
