# Empty compiler generated dependencies file for example_buffer_explorer.
# This may be replaced when dependencies are built.
