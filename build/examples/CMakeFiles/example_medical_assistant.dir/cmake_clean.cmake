file(REMOVE_RECURSE
  "CMakeFiles/example_medical_assistant.dir/medical_assistant.cpp.o"
  "CMakeFiles/example_medical_assistant.dir/medical_assistant.cpp.o.d"
  "example_medical_assistant"
  "example_medical_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_medical_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
