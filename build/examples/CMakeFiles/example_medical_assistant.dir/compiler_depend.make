# Empty compiler generated dependencies file for example_medical_assistant.
# This may be replaced when dependencies are built.
