file(REMOVE_RECURSE
  "CMakeFiles/example_empathetic_companion.dir/empathetic_companion.cpp.o"
  "CMakeFiles/example_empathetic_companion.dir/empathetic_companion.cpp.o.d"
  "example_empathetic_companion"
  "example_empathetic_companion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_empathetic_companion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
