# Empty dependencies file for example_empathetic_companion.
# This may be replaced when dependencies are built.
