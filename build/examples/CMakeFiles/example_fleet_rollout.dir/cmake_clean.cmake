file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_rollout.dir/fleet_rollout.cpp.o"
  "CMakeFiles/example_fleet_rollout.dir/fleet_rollout.cpp.o.d"
  "example_fleet_rollout"
  "example_fleet_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
