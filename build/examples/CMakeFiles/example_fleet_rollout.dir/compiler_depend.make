# Empty compiler generated dependencies file for example_fleet_rollout.
# This may be replaced when dependencies are built.
