# Empty compiler generated dependencies file for example_odlp_cli.
# This may be replaced when dependencies are built.
