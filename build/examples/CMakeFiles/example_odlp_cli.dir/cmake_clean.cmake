file(REMOVE_RECURSE
  "CMakeFiles/example_odlp_cli.dir/odlp_cli.cpp.o"
  "CMakeFiles/example_odlp_cli.dir/odlp_cli.cpp.o.d"
  "example_odlp_cli"
  "example_odlp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_odlp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
