file(REMOVE_RECURSE
  "CMakeFiles/example_device_checkpoint.dir/device_checkpoint.cpp.o"
  "CMakeFiles/example_device_checkpoint.dir/device_checkpoint.cpp.o.d"
  "example_device_checkpoint"
  "example_device_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_device_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
