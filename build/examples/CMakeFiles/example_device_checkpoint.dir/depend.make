# Empty dependencies file for example_device_checkpoint.
# This may be replaced when dependencies are built.
