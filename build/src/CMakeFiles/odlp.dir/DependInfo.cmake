
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attach.cpp" "src/CMakeFiles/odlp.dir/analysis/attach.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/analysis/attach.cpp.o.d"
  "/root/repo/src/analysis/audit_log.cpp" "src/CMakeFiles/odlp.dir/analysis/audit_log.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/analysis/audit_log.cpp.o.d"
  "/root/repo/src/analysis/domain_report.cpp" "src/CMakeFiles/odlp.dir/analysis/domain_report.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/analysis/domain_report.cpp.o.d"
  "/root/repo/src/baselines/fifo_policy.cpp" "src/CMakeFiles/odlp.dir/baselines/fifo_policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/baselines/fifo_policy.cpp.o.d"
  "/root/repo/src/baselines/kcenter_policy.cpp" "src/CMakeFiles/odlp.dir/baselines/kcenter_policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/baselines/kcenter_policy.cpp.o.d"
  "/root/repo/src/baselines/random_policy.cpp" "src/CMakeFiles/odlp.dir/baselines/random_policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/baselines/random_policy.cpp.o.d"
  "/root/repo/src/baselines/single_metric_policy.cpp" "src/CMakeFiles/odlp.dir/baselines/single_metric_policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/baselines/single_metric_policy.cpp.o.d"
  "/root/repo/src/core/buffer.cpp" "src/CMakeFiles/odlp.dir/core/buffer.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/buffer.cpp.o.d"
  "/root/repo/src/core/buffer_io.cpp" "src/CMakeFiles/odlp.dir/core/buffer_io.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/buffer_io.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/odlp.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/odlp.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/quality_metrics.cpp" "src/CMakeFiles/odlp.dir/core/quality_metrics.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/quality_metrics.cpp.o.d"
  "/root/repo/src/core/sanity_check.cpp" "src/CMakeFiles/odlp.dir/core/sanity_check.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/sanity_check.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/CMakeFiles/odlp.dir/core/synthesizer.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/synthesizer.cpp.o.d"
  "/root/repo/src/core/weighted_policy.cpp" "src/CMakeFiles/odlp.dir/core/weighted_policy.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/core/weighted_policy.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/CMakeFiles/odlp.dir/data/generator.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/generator.cpp.o.d"
  "/root/repo/src/data/phrase_pools.cpp" "src/CMakeFiles/odlp.dir/data/phrase_pools.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/phrase_pools.cpp.o.d"
  "/root/repo/src/data/profiles.cpp" "src/CMakeFiles/odlp.dir/data/profiles.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/profiles.cpp.o.d"
  "/root/repo/src/data/stream.cpp" "src/CMakeFiles/odlp.dir/data/stream.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/stream.cpp.o.d"
  "/root/repo/src/data/stream_transforms.cpp" "src/CMakeFiles/odlp.dir/data/stream_transforms.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/stream_transforms.cpp.o.d"
  "/root/repo/src/data/user_oracle.cpp" "src/CMakeFiles/odlp.dir/data/user_oracle.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/data/user_oracle.cpp.o.d"
  "/root/repo/src/devicesim/cost_model.cpp" "src/CMakeFiles/odlp.dir/devicesim/cost_model.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/devicesim/cost_model.cpp.o.d"
  "/root/repo/src/devicesim/memory_model.cpp" "src/CMakeFiles/odlp.dir/devicesim/memory_model.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/devicesim/memory_model.cpp.o.d"
  "/root/repo/src/eval/learning_curve.cpp" "src/CMakeFiles/odlp.dir/eval/learning_curve.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/eval/learning_curve.cpp.o.d"
  "/root/repo/src/eval/perplexity.cpp" "src/CMakeFiles/odlp.dir/eval/perplexity.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/eval/perplexity.cpp.o.d"
  "/root/repo/src/eval/rouge.cpp" "src/CMakeFiles/odlp.dir/eval/rouge.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/eval/rouge.cpp.o.d"
  "/root/repo/src/eval/significance.cpp" "src/CMakeFiles/odlp.dir/eval/significance.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/eval/significance.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/odlp.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/fleet.cpp" "src/CMakeFiles/odlp.dir/exp/fleet.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/exp/fleet.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/odlp.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/exp/report.cpp.o.d"
  "/root/repo/src/lexicon/builtin_lexicons.cpp" "src/CMakeFiles/odlp.dir/lexicon/builtin_lexicons.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/lexicon/builtin_lexicons.cpp.o.d"
  "/root/repo/src/lexicon/lexicon.cpp" "src/CMakeFiles/odlp.dir/lexicon/lexicon.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/lexicon/lexicon.cpp.o.d"
  "/root/repo/src/lexicon/lexicon_io.cpp" "src/CMakeFiles/odlp.dir/lexicon/lexicon_io.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/lexicon/lexicon_io.cpp.o.d"
  "/root/repo/src/llm/decode_session.cpp" "src/CMakeFiles/odlp.dir/llm/decode_session.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/llm/decode_session.cpp.o.d"
  "/root/repo/src/llm/embedding_extractor.cpp" "src/CMakeFiles/odlp.dir/llm/embedding_extractor.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/llm/embedding_extractor.cpp.o.d"
  "/root/repo/src/llm/minillm.cpp" "src/CMakeFiles/odlp.dir/llm/minillm.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/llm/minillm.cpp.o.d"
  "/root/repo/src/llm/sampler.cpp" "src/CMakeFiles/odlp.dir/llm/sampler.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/llm/sampler.cpp.o.d"
  "/root/repo/src/llm/trainer.cpp" "src/CMakeFiles/odlp.dir/llm/trainer.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/llm/trainer.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/odlp.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/block.cpp" "src/CMakeFiles/odlp.dir/nn/block.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/block.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/odlp.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/feedforward.cpp" "src/CMakeFiles/odlp.dir/nn/feedforward.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/feedforward.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/CMakeFiles/odlp.dir/nn/layernorm.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/odlp.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/odlp.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/odlp.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/param.cpp" "src/CMakeFiles/odlp.dir/nn/param.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/param.cpp.o.d"
  "/root/repo/src/nn/rmsnorm.cpp" "src/CMakeFiles/odlp.dir/nn/rmsnorm.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/nn/rmsnorm.cpp.o.d"
  "/root/repo/src/tensor/gradcheck.cpp" "src/CMakeFiles/odlp.dir/tensor/gradcheck.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/tensor/gradcheck.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/odlp.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/odlp.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/text/bpe.cpp" "src/CMakeFiles/odlp.dir/text/bpe.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/bpe.cpp.o.d"
  "/root/repo/src/text/ngrams.cpp" "src/CMakeFiles/odlp.dir/text/ngrams.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/ngrams.cpp.o.d"
  "/root/repo/src/text/normalize.cpp" "src/CMakeFiles/odlp.dir/text/normalize.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/normalize.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/CMakeFiles/odlp.dir/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocab.cpp" "src/CMakeFiles/odlp.dir/text/vocab.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/vocab.cpp.o.d"
  "/root/repo/src/text/vocab_io.cpp" "src/CMakeFiles/odlp.dir/text/vocab_io.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/text/vocab_io.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/odlp.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/util/args.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/odlp.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/odlp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/odlp.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/odlp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/odlp.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
