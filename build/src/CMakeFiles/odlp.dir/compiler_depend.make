# Empty compiler generated dependencies file for odlp.
# This may be replaced when dependencies are built.
