# Empty dependencies file for odlp.
# This may be replaced when dependencies are built.
