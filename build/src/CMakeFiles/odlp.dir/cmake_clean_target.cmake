file(REMOVE_RECURSE
  "libodlp.a"
)
