# Empty dependencies file for bench_micro_llm.
# This may be replaced when dependencies are built.
