file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_llm.dir/bench_micro_llm.cpp.o"
  "CMakeFiles/bench_micro_llm.dir/bench_micro_llm.cpp.o.d"
  "bench_micro_llm"
  "bench_micro_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
