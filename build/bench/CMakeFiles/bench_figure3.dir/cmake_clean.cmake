file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3.dir/bench_figure3.cpp.o"
  "CMakeFiles/bench_figure3.dir/bench_figure3.cpp.o.d"
  "bench_figure3"
  "bench_figure3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
