# Empty dependencies file for bench_figure3.
# This may be replaced when dependencies are built.
