# Empty dependencies file for bench_figure2.
# This may be replaced when dependencies are built.
