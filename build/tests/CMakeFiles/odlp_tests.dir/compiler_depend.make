# Empty compiler generated dependencies file for odlp_tests.
# This may be replaced when dependencies are built.
