
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis_and_lexicon_io.cpp" "tests/CMakeFiles/odlp_tests.dir/test_analysis_and_lexicon_io.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_analysis_and_lexicon_io.cpp.o.d"
  "/root/repo/tests/test_args.cpp" "tests/CMakeFiles/odlp_tests.dir/test_args.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_args.cpp.o.d"
  "/root/repo/tests/test_bpe.cpp" "tests/CMakeFiles/odlp_tests.dir/test_bpe.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_bpe.cpp.o.d"
  "/root/repo/tests/test_buffer.cpp" "tests/CMakeFiles/odlp_tests.dir/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_buffer.cpp.o.d"
  "/root/repo/tests/test_datagen.cpp" "tests/CMakeFiles/odlp_tests.dir/test_datagen.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_datagen.cpp.o.d"
  "/root/repo/tests/test_decode_session.cpp" "tests/CMakeFiles/odlp_tests.dir/test_decode_session.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_decode_session.cpp.o.d"
  "/root/repo/tests/test_devicesim.cpp" "tests/CMakeFiles/odlp_tests.dir/test_devicesim.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_devicesim.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/odlp_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/odlp_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_eval_extras.cpp" "tests/CMakeFiles/odlp_tests.dir/test_eval_extras.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_eval_extras.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/odlp_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/odlp_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fleet.cpp" "tests/CMakeFiles/odlp_tests.dir/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_fleet.cpp.o.d"
  "/root/repo/tests/test_gradcheck.cpp" "tests/CMakeFiles/odlp_tests.dir/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_gradcheck.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/odlp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lexicon.cpp" "tests/CMakeFiles/odlp_tests.dir/test_lexicon.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_lexicon.cpp.o.d"
  "/root/repo/tests/test_llm.cpp" "tests/CMakeFiles/odlp_tests.dir/test_llm.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_llm.cpp.o.d"
  "/root/repo/tests/test_loss.cpp" "tests/CMakeFiles/odlp_tests.dir/test_loss.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_loss.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/odlp_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_nn_modules.cpp" "tests/CMakeFiles/odlp_tests.dir/test_nn_modules.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_nn_modules.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/odlp_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_persistence.cpp" "tests/CMakeFiles/odlp_tests.dir/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_persistence.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/odlp_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/odlp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/odlp_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rmsnorm.cpp" "tests/CMakeFiles/odlp_tests.dir/test_rmsnorm.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_rmsnorm.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/odlp_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rouge.cpp" "tests/CMakeFiles/odlp_tests.dir/test_rouge.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_rouge.cpp.o.d"
  "/root/repo/tests/test_sampler.cpp" "tests/CMakeFiles/odlp_tests.dir/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_sampler.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/odlp_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_synthesizer.cpp" "tests/CMakeFiles/odlp_tests.dir/test_synthesizer.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_synthesizer.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/odlp_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/odlp_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_tensor_ops.cpp" "tests/CMakeFiles/odlp_tests.dir/test_tensor_ops.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_tensor_ops.cpp.o.d"
  "/root/repo/tests/test_text.cpp" "tests/CMakeFiles/odlp_tests.dir/test_text.cpp.o" "gcc" "tests/CMakeFiles/odlp_tests.dir/test_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
