#!/bin/sh
# Runs every bench binary, teeing each output to results/.
#
# Fails loudly: a missing binary (stale build, renamed target) or a bench
# exiting non-zero aborts the whole run with a non-zero exit instead of
# silently leaving stale results/ files behind. ALL_BENCHES_DONE is printed
# only when every bench ran.
#
# `run_benches.sh --chaos` runs only the seeded chaos sweep (bench_robustness
# --chaos), validates results/BENCH_robustness.json, and copies it to the
# repo root. The full (argument-free) run includes the chaos sweep too.
set -u
cd /root/repo

chaos_only=0
for arg in "$@"; do
  if [ "$arg" = "--chaos" ]; then
    chaos_only=1
  fi
done

fail=0

run_bench() {
  # run_bench NAME OUT ERR [ARGS...] — ERR of "-" merges stderr into OUT.
  bin="./build/bench/$1"
  out="$2"
  err="$3"
  shift 3
  if [ ! -x "$bin" ]; then
    echo "run_benches: MISSING BINARY $bin (build the bench targets first)" >&2
    fail=1
    return 1
  fi
  echo "+ $bin $*"
  if [ "$err" = "-" ]; then
    "$bin" "$@" > "results/$out" 2>&1
  else
    "$bin" "$@" > "results/$out" 2> "results/$err"
  fi
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "run_benches: $bin FAILED with exit $status (see results/$out)" >&2
    fail=1
    return 1
  fi
}

# Seeded chaos sweep (DESIGN.md §11): availability/MTTR/rung/retry ledger
# under fault schedules, written to results/BENCH_robustness.json. The bench
# itself exits non-zero if the default schedule drops below 99% availability,
# MTTR is unbounded, or a repeated schedule is not bit-identical.
run_chaos() {
  run_bench bench_robustness robustness_chaos.txt - \
    --chaos --out results/BENCH_robustness.json || return 1
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      results/BENCH_robustness.json; then
    echo "run_benches: results/BENCH_robustness.json is missing or not valid JSON" >&2
    fail=1
    return 1
  fi
  cp results/BENCH_robustness.json BENCH_robustness.json
}

if [ "$chaos_only" -eq 1 ]; then
  run_chaos
  if [ "$fail" -ne 0 ]; then
    echo "run_benches: chaos sweep failed" >&2
    exit 1
  fi
  echo CHAOS_BENCH_DONE
  exit 0
fi

run_bench bench_table2  table2.txt  table2.log
run_bench bench_table4  table4.txt  table4.log
run_bench bench_figure2 figure2.txt figure2.log
run_bench bench_figure3 figure3.txt figure3.log
run_bench bench_table3  table3.txt  table3.log
run_bench bench_ablation_design ablation.txt ablation.log
run_bench bench_micro_selection micro_selection.txt -
run_bench bench_micro_llm       micro_llm.txt -
run_bench bench_robustness      robustness.txt -
# Kernel/runtime perf harness; also writes results/BENCH_perf.json with
# GFLOP/s rows (fp32 and, when ODLP_INT8 is on, the quantized qmatmul +
# int8 decode/ledger/quality rows), the steady-state allocation probe, and
# the kernel build provenance (kernel_variant, native_arch,
# int8_kernel_variant, int8_block) so perf trajectories name the exact
# kernels they measured. --metrics-out dumps the full obs metrics registry;
# unparseable JSON there (or in BENCH_perf.json) fails the run.
run_bench bench_perf perf.txt perf.log --metrics-out results/metrics.json
perf_ok=$?

# Validate bench_perf's machine-readable outputs and refresh the repo-root
# copy of the perf summary immediately — not gated on the later benches, so
# a chaos failure can never leave a stale BENCH_perf.json at the root. A
# bench that "succeeded" but wrote broken JSON would silently poison every
# downstream perf-trajectory tool, so unparseable JSON still fails the run.
if [ "$perf_ok" -eq 0 ]; then
  for j in results/BENCH_perf.json results/metrics.json; do
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$j"; then
      echo "run_benches: $j is missing or not valid JSON" >&2
      fail=1
    fi
  done
  if [ "$fail" -eq 0 ]; then
    # Keep a repo-root copy where trajectory tooling (and humans skimming
    # the repo) expect it.
    cp results/BENCH_perf.json BENCH_perf.json
  fi
fi

# Multi-tenant fleet scheduler bench (DESIGN.md §13): sequential vs
# concurrent users/sec with bit-identity verification. The bench itself
# exits non-zero if any user's results diverge from the sequential
# reference or the speedup falls below 1.5x at 4 threads; its summary is
# merged into BENCH_perf.json under "fleet" so perf trajectories see one
# file.
run_bench bench_fleet fleet.txt - --out results/BENCH_fleet.json
fleet_ok=$?
if [ "$fleet_ok" -eq 0 ]; then
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      results/BENCH_fleet.json; then
    echo "run_benches: results/BENCH_fleet.json is missing or not valid JSON" >&2
    fail=1
  elif [ -f results/BENCH_perf.json ]; then
    if python3 - <<'EOF'
import json
perf = json.load(open("results/BENCH_perf.json"))
perf["fleet"] = json.load(open("results/BENCH_fleet.json"))
json.dump(perf, open("results/BENCH_perf.json", "w"), indent=2)
EOF
    then
      cp results/BENCH_perf.json BENCH_perf.json
    else
      echo "run_benches: merging BENCH_fleet.json into BENCH_perf.json failed" >&2
      fail=1
    fi
  fi
fi

# OBSF container bench (DESIGN.md §14): columnar binary storage vs the
# JSONL text path plus record-once/replay-many fleet traffic. The bench
# itself exits non-zero if the routing scan is below 5x the JSONL path,
# bytes-at-rest exceed 0.5x, or the replayed fleet diverges; its summary is
# merged into BENCH_perf.json under "io" and checked in as BENCH_io.json.
run_bench bench_io io.txt - --out results/BENCH_io.json
io_ok=$?
if [ "$io_ok" -eq 0 ]; then
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      results/BENCH_io.json; then
    echo "run_benches: results/BENCH_io.json is missing or not valid JSON" >&2
    fail=1
  else
    cp results/BENCH_io.json BENCH_io.json
    if [ -f results/BENCH_perf.json ]; then
      if python3 - <<'EOF'
import json
perf = json.load(open("results/BENCH_perf.json"))
perf["io"] = json.load(open("results/BENCH_io.json"))
json.dump(perf, open("results/BENCH_perf.json", "w"), indent=2)
EOF
      then
        cp results/BENCH_perf.json BENCH_perf.json
      else
        echo "run_benches: merging BENCH_io.json into BENCH_perf.json failed" >&2
        fail=1
      fi
    fi
  fi
fi

# Observability bench (DESIGN.md §15): metrics-journal wiring and bit-exact
# round-trip, scoped-counter hot-path cost vs the offer path, disabled-span
# cost vs a decode step, and a sampling-profiler window that must name the
# hot frames (tensor.gemm / decode / engine.score). The bench itself exits
# non-zero if any gate fails; its summary is merged into BENCH_perf.json
# under "obs" and checked in as BENCH_obs.json.
run_bench bench_obs obs.txt - --out results/BENCH_obs.json
obs_ok=$?
if [ "$obs_ok" -eq 0 ]; then
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      results/BENCH_obs.json; then
    echo "run_benches: results/BENCH_obs.json is missing or not valid JSON" >&2
    fail=1
  else
    cp results/BENCH_obs.json BENCH_obs.json
    if [ -f results/BENCH_perf.json ]; then
      if python3 - <<'EOF'
import json
perf = json.load(open("results/BENCH_perf.json"))
perf["obs"] = json.load(open("results/BENCH_obs.json"))
json.dump(perf, open("results/BENCH_perf.json", "w"), indent=2)
EOF
      then
        cp results/BENCH_perf.json BENCH_perf.json
      else
        echo "run_benches: merging BENCH_obs.json into BENCH_perf.json failed" >&2
        fail=1
      fi
    fi
  fi
fi

run_chaos

if [ "$fail" -ne 0 ]; then
  echo "run_benches: one or more benches missing or failed" >&2
  exit 1
fi

echo ALL_BENCHES_DONE
