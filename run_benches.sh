#!/bin/sh
# Runs every bench binary, teeing each output to results/.
set -x
cd /root/repo
./build/bench/bench_table2  > results/table2.txt  2> results/table2.log
./build/bench/bench_table4  > results/table4.txt  2> results/table4.log
./build/bench/bench_figure2 > results/figure2.txt 2> results/figure2.log
./build/bench/bench_figure3 > results/figure3.txt 2> results/figure3.log
./build/bench/bench_table3  > results/table3.txt  2> results/table3.log
./build/bench/bench_ablation_design > results/ablation.txt 2> results/ablation.log
./build/bench/bench_micro_selection > results/micro_selection.txt 2>&1
./build/bench/bench_micro_llm       > results/micro_llm.txt 2>&1
# Kernel/runtime perf harness; also writes results/BENCH_perf.json with
# GFLOP/s rows, the steady-state allocation probe, and the kernel build
# provenance (kernel_variant + native_arch, i.e. whether ODLP_NATIVE_ARCH
# was on) so perf trajectories name the GEMM build they measured.
./build/bench/bench_perf > results/perf.txt 2> results/perf.log
echo ALL_BENCHES_DONE
